// Package linear implements the linear evaluators of Table III — logistic
// regression and a linear SVM — plus ridge regression, which the paper lists
// as a binary feature-generation operator (Section III, citing AutoLearn).
// Models train with mini-batch SGD on standardised inputs; standardisation
// parameters are learned at fit time and applied at prediction time so
// callers pass raw features.
package linear

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// scaler standardises columns to zero mean / unit variance.
type scaler struct {
	mean []float64
	std  []float64
}

func fitScaler(cols [][]float64) *scaler {
	s := &scaler{mean: make([]float64, len(cols)), std: make([]float64, len(cols))}
	for j, col := range cols {
		var sum float64
		n := 0
		for _, v := range col {
			if math.IsNaN(v) {
				continue
			}
			sum += v
			n++
		}
		if n == 0 {
			s.std[j] = 1
			continue
		}
		mean := sum / float64(n)
		var ss float64
		for _, v := range col {
			if math.IsNaN(v) {
				continue
			}
			d := v - mean
			ss += d * d
		}
		std := math.Sqrt(ss / float64(n))
		if std < 1e-12 {
			std = 1
		}
		s.mean[j] = mean
		s.std[j] = std
	}
	return s
}

func (s *scaler) apply(row, dst []float64) {
	for j, v := range row {
		if math.IsNaN(v) {
			dst[j] = 0
			continue
		}
		dst[j] = (v - s.mean[j]) / s.std[j]
	}
}

// LogisticConfig configures logistic-regression training.
type LogisticConfig struct {
	Epochs       int
	LearningRate float64
	L2           float64
	BatchSize    int
	Seed         int64
}

// DefaultLogisticConfig returns settings comparable to sklearn's
// LogisticRegression defaults (L2-regularised).
func DefaultLogisticConfig() LogisticConfig {
	return LogisticConfig{Epochs: 30, LearningRate: 0.1, L2: 1e-4, BatchSize: 64}
}

// Logistic is a trained logistic-regression model.
type Logistic struct {
	W      []float64
	B      float64
	scaler *scaler
}

// TrainLogistic fits logistic regression on column-major data with {0,1}
// labels.
func TrainLogistic(cols [][]float64, labels []float64, cfg LogisticConfig) (*Logistic, error) {
	rows, err := toRows(cols, len(labels))
	if err != nil {
		return nil, err
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	m := len(cols)
	sc := fitScaler(cols)
	lm := &Logistic{W: make([]float64, m), scaler: sc}

	n := len(labels)
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, m)
		sc.apply(rows[i], x[i])
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(n)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate / (1 + 0.1*float64(epoch))
		shuffleInts(order, rng)
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			gw := make([]float64, m)
			gb := 0.0
			for _, i := range order[start:end] {
				z := lm.B
				for j, v := range x[i] {
					z += lm.W[j] * v
				}
				e := sigmoid(z) - labels[i]
				for j, v := range x[i] {
					gw[j] += e * v
				}
				gb += e
			}
			k := float64(end - start)
			for j := range lm.W {
				lm.W[j] -= lr * (gw[j]/k + cfg.L2*lm.W[j])
			}
			lm.B -= lr * gb / k
		}
	}
	return lm, nil
}

// PredictRow returns the positive-class probability for one raw row.
func (lm *Logistic) PredictRow(row []float64) float64 {
	x := make([]float64, len(row))
	lm.scaler.apply(row, x)
	z := lm.B
	for j, v := range x {
		z += lm.W[j] * v
	}
	return sigmoid(z)
}

// Predict scores column-major data.
func (lm *Logistic) Predict(cols [][]float64) []float64 {
	return predictRows(cols, lm.PredictRow)
}

// SVMConfig configures the linear SVM.
type SVMConfig struct {
	Epochs       int
	LearningRate float64
	C            float64 // inverse regularisation strength
	Seed         int64
}

// DefaultSVMConfig mirrors a default linear-kernel SVC at this scale.
func DefaultSVMConfig() SVMConfig {
	return SVMConfig{Epochs: 30, LearningRate: 0.05, C: 1.0}
}

// SVM is a trained linear SVM. Scores are calibrated to probabilities with a
// fixed sigmoid on the margin (Platt-style with unit slope), which preserves
// ranking — the property AUC measures.
type SVM struct {
	W      []float64
	B      float64
	scaler *scaler
}

// TrainSVM fits a linear SVM with hinge loss and L2 regularisation via
// Pegasos-style SGD.
func TrainSVM(cols [][]float64, labels []float64, cfg SVMConfig) (*SVM, error) {
	rows, err := toRows(cols, len(labels))
	if err != nil {
		return nil, err
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	if cfg.C <= 0 {
		cfg.C = 1
	}
	m := len(cols)
	n := len(labels)
	sc := fitScaler(cols)
	svm := &SVM{W: make([]float64, m), scaler: sc}
	lambda := 1 / (cfg.C * float64(n))

	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, m)
		sc.apply(rows[i], x[i])
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(n)
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		shuffleInts(order, rng)
		for _, i := range order {
			step++
			lr := cfg.LearningRate / (1 + lambda*float64(step))
			y := -1.0
			if labels[i] > 0.5 {
				y = 1
			}
			z := svm.B
			for j, v := range x[i] {
				z += svm.W[j] * v
			}
			for j := range svm.W {
				svm.W[j] -= lr * lambda * svm.W[j]
			}
			if y*z < 1 {
				for j, v := range x[i] {
					svm.W[j] += lr * y * v
				}
				svm.B += lr * y
			}
		}
	}
	return svm, nil
}

// PredictRow returns a calibrated probability for one raw row.
func (svm *SVM) PredictRow(row []float64) float64 {
	x := make([]float64, len(row))
	svm.scaler.apply(row, x)
	z := svm.B
	for j, v := range x {
		z += svm.W[j] * v
	}
	return sigmoid(z)
}

// Predict scores column-major data.
func (svm *SVM) Predict(cols [][]float64) []float64 {
	return predictRows(cols, svm.PredictRow)
}

// Ridge is a closed-form ridge regression of one target feature on one (or
// more) source features. The paper lists ridge regression among the binary
// operators (a generated feature is the regression's prediction or residual).
type Ridge struct {
	W []float64
	B float64
}

// TrainRidge solves (X'X + alpha I) w = X'y with Gaussian elimination. cols
// is column-major; y is the regression target.
func TrainRidge(cols [][]float64, y []float64, alpha float64) (*Ridge, error) {
	m := len(cols)
	if m == 0 {
		return nil, errors.New("linear: ridge: no features")
	}
	n := len(y)
	for j := range cols {
		if len(cols[j]) != n {
			return nil, fmt.Errorf("linear: ridge: column %d has %d rows, want %d", j, len(cols[j]), n)
		}
	}
	if alpha <= 0 {
		alpha = 1e-6
	}
	// Build the (m+1)x(m+1) normal system including a bias column.
	d := m + 1
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1)
	}
	get := func(j, i int) float64 {
		if j == m {
			return 1
		}
		v := cols[j][i]
		if math.IsNaN(v) {
			return 0
		}
		return v
	}
	for p := 0; p < d; p++ {
		for q := p; q < d; q++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += get(p, i) * get(q, i)
			}
			a[p][q] = s
			a[q][p] = s
		}
		if p < m {
			a[p][p] += alpha
		}
		s := 0.0
		for i := 0; i < n; i++ {
			s += get(p, i) * y[i]
		}
		a[p][d] = s
	}
	w, err := solve(a)
	if err != nil {
		return nil, err
	}
	return &Ridge{W: w[:m], B: w[m]}, nil
}

// PredictRow evaluates the regression for one row.
func (r *Ridge) PredictRow(row []float64) float64 {
	s := r.B
	for j, v := range row {
		if math.IsNaN(v) {
			continue
		}
		s += r.W[j] * v
	}
	return s
}

// solve performs Gaussian elimination with partial pivoting on an augmented
// matrix a (d x d+1), returning the solution vector.
func solve(a [][]float64) ([]float64, error) {
	d := len(a)
	for p := 0; p < d; p++ {
		// Pivot.
		max, arg := math.Abs(a[p][p]), p
		for r := p + 1; r < d; r++ {
			if v := math.Abs(a[r][p]); v > max {
				max, arg = v, r
			}
		}
		if max < 1e-12 {
			return nil, errors.New("linear: singular system")
		}
		a[p], a[arg] = a[arg], a[p]
		for r := p + 1; r < d; r++ {
			f := a[r][p] / a[p][p]
			for c := p; c <= d; c++ {
				a[r][c] -= f * a[p][c]
			}
		}
	}
	x := make([]float64, d)
	for p := d - 1; p >= 0; p-- {
		s := a[p][d]
		for c := p + 1; c < d; c++ {
			s -= a[p][c] * x[c]
		}
		x[p] = s / a[p][p]
	}
	return x, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func toRows(cols [][]float64, n int) ([][]float64, error) {
	m := len(cols)
	if m == 0 {
		return nil, errors.New("linear: no features")
	}
	if n == 0 {
		return nil, errors.New("linear: no rows")
	}
	for j := range cols {
		if len(cols[j]) != n {
			return nil, fmt.Errorf("linear: column %d has %d rows, want %d", j, len(cols[j]), n)
		}
	}
	rows := make([][]float64, n)
	flat := make([]float64, n*m)
	for i := 0; i < n; i++ {
		rows[i] = flat[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			rows[i][j] = cols[j][i]
		}
	}
	return rows, nil
}

func predictRows(cols [][]float64, f func([]float64) float64) []float64 {
	if len(cols) == 0 {
		return nil
	}
	n := len(cols[0])
	out := make([]float64, n)
	row := make([]float64, len(cols))
	for i := 0; i < n; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		out[i] = f(row)
	}
	return out
}

func shuffleInts(xs []int, rng *rand.Rand) {
	for i := len(xs) - 1; i > 0; i-- {
		k := rng.Intn(i + 1)
		xs[i], xs[k] = xs[k], xs[i]
	}
}
