package linear

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

func separable(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		cols[0][i] = rng.NormFloat64()
		cols[1][i] = rng.NormFloat64()
		if 2*cols[0][i]-cols[1][i] > 0 {
			labels[i] = 1
		}
	}
	return cols, labels
}

func TestLogisticValidation(t *testing.T) {
	if _, err := TrainLogistic(nil, []float64{1}, DefaultLogisticConfig()); err == nil {
		t.Error("accepted no features")
	}
	if _, err := TrainLogistic([][]float64{{1}}, nil, DefaultLogisticConfig()); err == nil {
		t.Error("accepted no labels")
	}
	if _, err := TrainLogistic([][]float64{{1, 2}, {1}}, []float64{0, 1}, DefaultLogisticConfig()); err == nil {
		t.Error("accepted ragged columns")
	}
}

func TestLogisticLearnsSeparable(t *testing.T) {
	cols, labels := separable(2000, 1)
	lm, err := TrainLogistic(cols, labels, DefaultLogisticConfig())
	if err != nil {
		t.Fatal(err)
	}
	testCols, testLabels := separable(500, 42)
	if auc := metrics.AUC(lm.Predict(testCols), testLabels); auc < 0.97 {
		t.Errorf("logistic test AUC = %v, want >= 0.97", auc)
	}
}

func TestLogisticSignOfWeights(t *testing.T) {
	cols, labels := separable(2000, 2)
	lm, err := TrainLogistic(cols, labels, DefaultLogisticConfig())
	if err != nil {
		t.Fatal(err)
	}
	if lm.W[0] <= 0 {
		t.Errorf("weight on positively-correlated feature = %v, want > 0", lm.W[0])
	}
	if lm.W[1] >= 0 {
		t.Errorf("weight on negatively-correlated feature = %v, want < 0", lm.W[1])
	}
}

func TestLogisticProbabilities(t *testing.T) {
	cols, labels := separable(300, 3)
	lm, err := TrainLogistic(cols, labels, DefaultLogisticConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range lm.Predict(cols) {
		if p <= 0 || p >= 1 || math.IsNaN(p) {
			t.Fatalf("prediction %v outside (0,1)", p)
		}
	}
}

func TestLogisticHandlesNaN(t *testing.T) {
	cols, labels := separable(300, 4)
	cols[0][0] = math.NaN()
	lm, err := TrainLogistic(cols, labels, DefaultLogisticConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := lm.PredictRow([]float64{math.NaN(), 1})
	if math.IsNaN(p) {
		t.Error("NaN input produced NaN prediction")
	}
}

func TestSVMLearnsSeparable(t *testing.T) {
	cols, labels := separable(2000, 5)
	svm, err := TrainSVM(cols, labels, DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	testCols, testLabels := separable(500, 43)
	if auc := metrics.AUC(svm.Predict(testCols), testLabels); auc < 0.95 {
		t.Errorf("SVM test AUC = %v, want >= 0.95", auc)
	}
}

func TestSVMValidation(t *testing.T) {
	if _, err := TrainSVM(nil, []float64{1}, DefaultSVMConfig()); err == nil {
		t.Error("accepted no features")
	}
}

func TestRidgeExactFit(t *testing.T) {
	// y = 2x + 3 exactly; tiny alpha recovers the coefficients.
	n := 50
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i)
		y[i] = 2*x[i] + 3
	}
	r, err := TrainRidge([][]float64{x}, y, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.W[0]-2) > 1e-3 {
		t.Errorf("slope = %v, want 2", r.W[0])
	}
	if math.Abs(r.B-3) > 1e-2 {
		t.Errorf("intercept = %v, want 3", r.B)
	}
}

func TestRidgeMultiFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 500
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = rng.NormFloat64()
		x2[i] = rng.NormFloat64()
		y[i] = 1.5*x1[i] - 0.5*x2[i] + 0.01*rng.NormFloat64()
	}
	r, err := TrainRidge([][]float64{x1, x2}, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.W[0]-1.5) > 0.05 || math.Abs(r.W[1]+0.5) > 0.05 {
		t.Errorf("weights = %v, want [1.5, -0.5]", r.W)
	}
}

func TestRidgeRegularisationShrinks(t *testing.T) {
	n := 100
	x := make([]float64, n)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64()
		y[i] = 4 * x[i]
	}
	small, err := TrainRidge([][]float64{x}, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	large, err := TrainRidge([][]float64{x}, y, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(large.W[0]) >= math.Abs(small.W[0]) {
		t.Errorf("alpha=1e4 weight %v not smaller than alpha=1e-6 weight %v", large.W[0], small.W[0])
	}
}

func TestRidgeValidation(t *testing.T) {
	if _, err := TrainRidge(nil, []float64{1}, 1); err == nil {
		t.Error("accepted no features")
	}
	if _, err := TrainRidge([][]float64{{1, 2}}, []float64{1}, 1); err == nil {
		t.Error("accepted length mismatch")
	}
}
