package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/gbdt"
)

// TaskKind enumerates the prediction task families SAFE can engineer
// features for. The paper evaluates on binary risk scoring; the criterion
// layer (Information Value, gain ratio) and the XGBoost objectives
// generalise per task, while the generation, redundancy-removal and ranking
// machinery is shared.
type TaskKind int

const (
	// TaskBinary is two-class classification on {0,1} labels: sigmoid GBDT
	// objectives and Information Value selection (the paper's setting, and
	// the zero value).
	TaskBinary TaskKind = iota
	// TaskMulticlass is K-class classification on class-index labels in
	// [0,K): softmax GBDT objectives and a per-class-histogram multiclass
	// Information Value.
	TaskMulticlass
	// TaskRegression is real-valued prediction: squared-error GBDT
	// objectives and a correlation-ratio (one-way ANOVA η²) criterion.
	TaskRegression
)

// Task identifies the prediction task a fit runs for: the kind plus, for
// multiclass, the class count. The zero value is the binary task, so
// existing configurations keep their behaviour.
type Task struct {
	Kind TaskKind
	// Classes is the class count for TaskMulticlass (>= 2); ignored for the
	// other kinds.
	Classes int
}

// BinaryTask returns the paper's binary classification task.
func BinaryTask() Task { return Task{Kind: TaskBinary} }

// MulticlassTask returns a K-class classification task.
func MulticlassTask(k int) Task { return Task{Kind: TaskMulticlass, Classes: k} }

// RegressionTask returns the real-valued prediction task.
func RegressionTask() Task { return Task{Kind: TaskRegression} }

// String renders the task in the form ParseTask accepts: "binary",
// "multiclass:K", or "regression".
func (t Task) String() string {
	switch t.Kind {
	case TaskMulticlass:
		return fmt.Sprintf("multiclass:%d", t.Classes)
	case TaskRegression:
		return "regression"
	default:
		return "binary"
	}
}

// ParseTask parses a task spec: "binary", "regression", or "multiclass:K"
// (K >= 2). It is the parser behind the CLI -task flags.
func ParseTask(s string) (Task, error) {
	switch {
	case s == "" || s == "binary":
		return BinaryTask(), nil
	case s == "regression":
		return RegressionTask(), nil
	case strings.HasPrefix(s, "multiclass:"):
		k, err := strconv.Atoi(strings.TrimPrefix(s, "multiclass:"))
		if err != nil || k < 2 {
			return Task{}, fmt.Errorf("core: bad task %q: want multiclass:K with K >= 2", s)
		}
		return MulticlassTask(k), nil
	default:
		return Task{}, fmt.Errorf("core: unknown task %q (want binary, multiclass:K, or regression)", s)
	}
}

// Validate checks the task is well-formed.
func (t Task) Validate() error {
	switch t.Kind {
	case TaskBinary, TaskRegression:
		return nil
	case TaskMulticlass:
		if t.Classes < 2 {
			return fmt.Errorf("core: multiclass task needs Classes >= 2, got %d", t.Classes)
		}
		return nil
	default:
		return fmt.Errorf("core: unknown task kind %d", t.Kind)
	}
}

// ValidateLabels checks a label vector fits the task: {0,1} for binary,
// integer class indices in [0,Classes) for multiclass, finite values for
// regression.
func (t Task) ValidateLabels(labels []float64) error {
	switch t.Kind {
	case TaskBinary:
		for i, y := range labels {
			if y != 0 && y != 1 {
				return fmt.Errorf("core: row %d: label %g is not in {0,1} (binary task)", i, y)
			}
		}
	case TaskMulticlass:
		k := float64(t.Classes)
		for i, y := range labels {
			if y != math.Trunc(y) || y < 0 || y >= k {
				return fmt.Errorf("core: row %d: label %g is not a class index in [0,%d)", i, y, t.Classes)
			}
		}
	case TaskRegression:
		for i, y := range labels {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				return fmt.Errorf("core: row %d: target %g is not finite (regression task)", i, y)
			}
		}
	}
	return nil
}

// ApplyObjective sets a GBDT configuration's loss to the task's objective —
// the mapping the fit engine applies to its miner and ranker, exported so
// downstream-model builders (examples, serving flows) stay consistent with
// the fitted pipeline's task.
func (t Task) ApplyObjective(cfg *gbdt.Config) { t.applyObjective(cfg) }

// applyObjective sets a GBDT configuration's loss to the task's objective:
// sigmoid cross-entropy, softmax over Classes, or squared error.
func (t Task) applyObjective(cfg *gbdt.Config) {
	switch t.Kind {
	case TaskMulticlass:
		cfg.Objective = gbdt.Softmax
		cfg.NumClass = t.Classes
	case TaskRegression:
		cfg.Objective = gbdt.Squared
		cfg.NumClass = 0
	default:
		cfg.Objective = gbdt.Logistic
		cfg.NumClass = 0
	}
}
