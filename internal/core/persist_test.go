package core

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/datagen"
)

func fitPipeline(t *testing.T, ops []string) (*Pipeline, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "persist-test", Train: 2500, Test: 800, Dim: 10,
		Informative: 2, Interactions: 3, SignalScale: 2.5, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if ops != nil {
		cfg.Operators = ops
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	return p, ds
}

func assertSameTransform(t *testing.T, a, b *Pipeline, ds *datagen.Dataset) {
	t.Helper()
	outA, err := a.Transform(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := b.Transform(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	if outA.NumCols() != outB.NumCols() {
		t.Fatalf("widths differ: %d vs %d", outA.NumCols(), outB.NumCols())
	}
	for j := range outA.Columns {
		if outA.Columns[j].Name != outB.Columns[j].Name {
			t.Fatalf("column %d name %q vs %q", j, outA.Columns[j].Name, outB.Columns[j].Name)
		}
		for i := range outA.Columns[j].Values {
			va, vb := outA.Columns[j].Values[i], outB.Columns[j].Values[i]
			if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
				t.Fatalf("col %q row %d: %v vs %v", outA.Columns[j].Name, i, va, vb)
			}
		}
	}
}

func TestPipelineRoundTripArithmetic(t *testing.T) {
	p, ds := fitPipeline(t, nil)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTransform(t, p, loaded, ds)
}

func TestPipelineRoundTripFittedOperators(t *testing.T) {
	// Operators with learned parameters: normalisation, binning, groupby,
	// ridge. All must survive serialisation bit-exactly.
	p, ds := fitPipeline(t, []string{"mul", "div", "minmax", "zscore", "bin_freq", "groupby_avg", "ridge"})
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTransform(t, p, loaded, ds)
}

func TestPipelineRoundTripFile(t *testing.T) {
	p, ds := fitPipeline(t, nil)
	path := filepath.Join(t.TempDir(), "pipeline.json")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipelineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTransform(t, p, loaded, ds)
}

func TestLoadPipelineRejectsGarbage(t *testing.T) {
	if _, err := LoadPipeline(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := LoadPipeline(bytes.NewReader([]byte(`{"version":99}`))); err == nil {
		t.Error("accepted unknown version")
	}
}

func TestLoadPipelineValidatesTopology(t *testing.T) {
	// A node depending on a column nobody produces must be rejected.
	bad := []byte(`{
		"version": 1,
		"original_names": ["a"],
		"nodes": [{"name":"(a + ghost)","inputs":["a","ghost"],"kind":"stateless","data":{"op":"add"}}],
		"output": ["(a + ghost)"]
	}`)
	if _, err := LoadPipeline(bytes.NewReader(bad)); err == nil {
		t.Error("accepted dangling dependency")
	}
	// An output nobody produces must be rejected.
	bad2 := []byte(`{
		"version": 1,
		"original_names": ["a"],
		"nodes": [],
		"output": ["ghost"]
	}`)
	if _, err := LoadPipeline(bytes.NewReader(bad2)); err == nil {
		t.Error("accepted dangling output")
	}
}

func TestLoadedPipelineTransformRow(t *testing.T) {
	p, ds := fitPipeline(t, nil)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	row := ds.Test.Row(3, nil)
	a, err := p.TransformRow(row)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.TransformRow(row)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			t.Fatalf("feature %d: %v vs %v", i, a[i], b[i])
		}
	}
}
