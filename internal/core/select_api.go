package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/gbdt"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// SelectionConfig configures the standalone three-stage selection pipeline
// (Algorithms 3 and 4 plus gain ranking). The RAND and IMP baselines of
// Section V-A1 "follow the same feature selection process as SAFE", which
// they do by calling Select with this config.
type SelectionConfig struct {
	// Task selects the criterion and ranker objective; the zero value is the
	// binary task.
	Task             Task
	IVThreshold      float64
	IVBins           int
	IVEqualWidth     bool
	PearsonThreshold float64
	MaxFeatures      int
	MinKeepIV        int
	Ranker           gbdt.Config
	Parallel         bool
	// Workers bounds the shared worker pool when Parallel is set; <= 0
	// selects GOMAXPROCS. Results are identical for any worker count.
	Workers int
	// SkipIV and SkipPearson disable individual stages (selection ablation).
	SkipIV      bool
	SkipPearson bool
}

// DefaultSelectionConfig mirrors the paper's thresholds (α=0.1, β=10,
// θ=0.8).
func DefaultSelectionConfig() SelectionConfig {
	ranker := gbdt.DefaultConfig()
	ranker.NumTrees = 20
	ranker.MaxDepth = 4
	return SelectionConfig{
		IVThreshold:      stats.DefaultIVCutoff,
		IVBins:           10,
		PearsonThreshold: stats.DefaultPearsonCutoff,
		MinKeepIV:        8,
		Ranker:           ranker,
		Parallel:         true,
	}
}

// Select runs the SAFE selection pipeline over candidate columns and returns
// the indices of the selected columns in importance order (best first),
// capped at cfg.MaxFeatures when positive.
func Select(cols [][]float64, labels []float64, cfg SelectionConfig) ([]int, error) {
	if len(cols) == 0 {
		return nil, errors.New("core: select: no candidate columns")
	}
	if len(labels) == 0 {
		return nil, errors.New("core: select: no labels")
	}
	if cfg.IVBins <= 1 {
		cfg.IVBins = 10
	}
	if cfg.MinKeepIV <= 0 {
		cfg.MinKeepIV = 8
	}
	if cfg.PearsonThreshold <= 0 {
		cfg.PearsonThreshold = stats.DefaultPearsonCutoff
	}
	if err := cfg.Task.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Task.ValidateLabels(labels); err != nil {
		return nil, err
	}
	if cfg.Task.Kind != TaskBinary && cfg.IVEqualWidth {
		return nil, fmt.Errorf("core: IVEqualWidth is a binary-IV ablation; not supported for the %s task", cfg.Task)
	}
	if cfg.Ranker.NumTrees == 0 {
		cfg.Ranker = gbdt.DefaultConfig()
		cfg.Ranker.NumTrees = 20
		cfg.Ranker.MaxDepth = 4
	}
	cfg.Task.applyObjective(&cfg.Ranker)
	cfg.Ranker.Parallel = cfg.Parallel
	cfg.Ranker.Workers = cfg.Workers
	pool := parallel.Get(1)
	if cfg.Parallel {
		pool = parallel.Get(cfg.Workers)
	}

	ivs := computeCriteria(cols, labels, cfg.Task, cfg.IVBins, cfg.IVEqualWidth, pool)

	var keptA []int
	if cfg.SkipIV {
		keptA = make([]int, len(cols))
		for j := range keptA {
			keptA[j] = j
		}
	} else {
		keptA = ivFilter(ivs, cfg.IVThreshold, cfg.MinKeepIV)
	}

	keptB := keptA
	if !cfg.SkipPearson {
		var err error
		keptB, err = pearsonDedup(context.Background(), cols, ivs, keptA, cfg.PearsonThreshold, pool)
		if err != nil {
			return nil, err
		}
	}

	ranked, err := rankByGain(context.Background(), cols, labels, ivs, keptB, cfg.Ranker)
	if err != nil {
		return nil, err
	}
	if cfg.MaxFeatures > 0 && len(ranked) > cfg.MaxFeatures {
		ranked = ranked[:cfg.MaxFeatures]
	}
	return ranked, nil
}

// IVs exposes the parallel Information Value computation for harness code.
func IVs(cols [][]float64, labels []float64, bins int, par bool) []float64 {
	pool := parallel.Get(1)
	if par {
		pool = parallel.Get(0)
	}
	return computeCriteria(cols, labels, BinaryTask(), bins, false, pool)
}
