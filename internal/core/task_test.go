package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/frame"
	"repro/internal/gbdt"
)

func TestParseTaskRoundTrip(t *testing.T) {
	for _, s := range []string{"binary", "multiclass:3", "multiclass:7", "regression"} {
		task, err := ParseTask(s)
		if err != nil {
			t.Fatalf("ParseTask(%q): %v", s, err)
		}
		if task.String() != s {
			t.Fatalf("round trip: %q -> %q", s, task.String())
		}
	}
	if task, err := ParseTask(""); err != nil || task != BinaryTask() {
		t.Fatalf("empty spec: %v %v", task, err)
	}
	for _, s := range []string{"multiclass", "multiclass:1", "multiclass:x", "ordinal"} {
		if _, err := ParseTask(s); err == nil {
			t.Errorf("ParseTask(%q) accepted", s)
		}
	}
}

func TestTaskValidateLabels(t *testing.T) {
	if err := BinaryTask().ValidateLabels([]float64{0, 1, 1, 0}); err != nil {
		t.Error(err)
	}
	if err := BinaryTask().ValidateLabels([]float64{0, 2}); err == nil {
		t.Error("binary accepted label 2")
	}
	if err := MulticlassTask(3).ValidateLabels([]float64{0, 1, 2}); err != nil {
		t.Error(err)
	}
	if err := MulticlassTask(3).ValidateLabels([]float64{0, 1.5}); err == nil {
		t.Error("multiclass accepted fractional label")
	}
	if err := MulticlassTask(3).ValidateLabels([]float64{3}); err == nil {
		t.Error("multiclass accepted out-of-range class")
	}
	if err := RegressionTask().ValidateLabels([]float64{-1.5, 42}); err != nil {
		t.Error(err)
	}
	if err := RegressionTask().ValidateLabels([]float64{math.NaN()}); err == nil {
		t.Error("regression accepted NaN target")
	}
}

func taskFrame(t *testing.T, target datagen.TargetKind, classes, rows, dim int) *frame.Frame {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "core-task-test", Train: rows, Test: 32, Dim: dim,
		Interactions: dim / 3, SignalScale: 2.5, Seed: 11,
		Target: target, Classes: classes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Train
}

// TestFitConstantRegressionTarget: a constant target has no variance to
// explain — every criterion is 0, the min-keep fallback carries the fit, and
// the squared-error rankers see zero gradients — yet Fit must complete and
// emit a deterministic full-shape pipeline.
func TestFitConstantRegressionTarget(t *testing.T) {
	train := taskFrame(t, datagen.TargetRegression, 0, 1500, 8)
	for i := range train.Label {
		train.Label[i] = 3.75
	}
	cfg := DefaultConfig()
	cfg.Task = RegressionTask()
	cfg.Seed = 2
	var prev []string
	for run := 0; run < 2; run++ {
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, report, err := eng.Fit(train)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Output) == 0 {
			t.Fatal("constant target produced an empty pipeline")
		}
		ir := report.Iterations[0]
		if ir.AfterIV != cfg.MinKeepIV {
			t.Fatalf("expected the min-keep fallback (%d), got %d past the filter", cfg.MinKeepIV, ir.AfterIV)
		}
		if run > 0 && strings.Join(prev, "|") != strings.Join(p.Output, "|") {
			t.Fatalf("constant-target fit is nondeterministic:\n %v\n %v", prev, p.Output)
		}
		prev = p.Output
	}
}

// TestFitTaskWorkerInvariance: for every task family the in-memory fit
// selects identical features for any worker count.
func TestFitTaskWorkerInvariance(t *testing.T) {
	cases := []struct {
		task    Task
		target  datagen.TargetKind
		classes int
	}{
		{MulticlassTask(3), datagen.TargetMulticlass, 3},
		{RegressionTask(), datagen.TargetRegression, 0},
	}
	for _, tc := range cases {
		train := taskFrame(t, tc.target, tc.classes, 3000, 10)
		var outputs [][]string
		for _, workers := range []int{1, 3} {
			cfg := DefaultConfig()
			cfg.Task = tc.task
			cfg.Seed = 2
			cfg.Workers = workers
			eng, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			p, _, err := eng.Fit(train)
			if err != nil {
				t.Fatal(err)
			}
			outputs = append(outputs, p.Output)
		}
		if strings.Join(outputs[0], "|") != strings.Join(outputs[1], "|") {
			t.Fatalf("%s: worker count changed the selection:\n 1: %v\n 3: %v",
				tc.task, outputs[0], outputs[1])
		}
	}
}

// TestFitWithValidationRegression: the regression validation score is
// negative RMSE (always <= 0), so the best-round tracking must start at
// -Inf — a best-so-far of 0 would silently reject every round and return
// only original columns.
func TestFitWithValidationRegression(t *testing.T) {
	ds, err := datagen.Generate(datagen.Spec{
		Name: "core-task-valid", Train: 2000, Valid: 600, Test: 32, Dim: 8,
		Interactions: 3, SignalScale: 2.5, Seed: 11,
		Target: datagen.TargetRegression,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Task = RegressionTask()
	cfg.Seed = 1
	cfg.Patience = 2
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, report, err := eng.FitWithValidation(ds.Train, ds.Valid)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumDerived() == 0 {
		t.Fatalf("validated regression fit kept no engineered features: %v", p.Output)
	}
	if report.Iterations[0].ValidAUC >= 0 {
		t.Fatalf("regression validation score should be negative RMSE, got %g", report.Iterations[0].ValidAUC)
	}
}

// TestPipelineTaskPersistRoundTrip: the task survives Save/Load, and files
// saved before the task field existed load as binary.
func TestPipelineTaskPersistRoundTrip(t *testing.T) {
	train := taskFrame(t, datagen.TargetMulticlass, 4, 800, 6)
	cfg := DefaultConfig()
	cfg.Task = MulticlassTask(4)
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := eng.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Task != MulticlassTask(4) {
		t.Fatalf("task after round trip: %v", loaded.Task)
	}

	// Pre-task pipeline JSON (no "task" key) loads as binary.
	legacy := `{"version":1,"original_names":["a"],"nodes":[],"output":["a"]}`
	lp, err := LoadPipeline(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if lp.Task != BinaryTask() {
		t.Fatalf("legacy pipeline task: %v, want binary", lp.Task)
	}
}

// TestNormalizeConfigTaskGuards: task-incompatible options fail fast.
func TestNormalizeConfigTaskGuards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Task = RegressionTask()
	cfg.IVEqualWidth = true
	if _, err := NormalizeConfig(cfg); err == nil {
		t.Error("IVEqualWidth accepted for regression")
	}

	cfg = DefaultConfig()
	cfg.Task = MulticlassTask(3)
	cfg.Operators = []string{"add", "bin_chimerge"}
	if _, err := NormalizeConfig(cfg); err == nil {
		t.Error("bin_chimerge accepted for multiclass")
	}

	cfg = DefaultConfig()
	cfg.Task = Task{Kind: TaskMulticlass, Classes: 1}
	if _, err := NormalizeConfig(cfg); err == nil {
		t.Error("1-class multiclass accepted")
	}

	// The normalised miner/ranker must carry the task's objective.
	cfg = DefaultConfig()
	cfg.Task = MulticlassTask(5)
	norm, err := NormalizeConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if norm.Miner.Objective != gbdt.Softmax || norm.Miner.NumClass != 5 {
		t.Fatalf("miner objective not applied: %+v", norm.Miner)
	}
	if norm.Ranker.Objective != gbdt.Softmax || norm.Ranker.NumClass != 5 {
		t.Fatalf("ranker objective not applied: %+v", norm.Ranker)
	}
}
