package core

import (
	"context"
	"sort"

	"repro/internal/gbdt"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Combo is a candidate feature combination mined from tree paths: feature
// indices into the current live feature set, with the split values observed
// for each feature, and its information gain ratio (Algorithm 2).
type Combo struct {
	Features  []int       // sorted feature indices, len 1..3
	Values    [][]float64 // per feature, sorted distinct split values
	GainRatio float64
}

// comboKey uniquely identifies a combination by its sorted feature indices.
type comboKey struct{ a, b, c int } // unused slots are -1

func keyOf(feats []int) comboKey {
	k := comboKey{-1, -1, -1}
	switch len(feats) {
	case 1:
		k.a = feats[0]
	case 2:
		k.a, k.b = feats[0], feats[1]
	case 3:
		k.a, k.b, k.c = feats[0], feats[1], feats[2]
	}
	return k
}

// mineCombos enumerates feature combinations from the model's root-to-leaf
// paths (Section IV-B1). arities lists the combination sizes wanted (1 for
// unary operators, 2 for binary, 3 for ternary). Combinations recurring on
// several paths are merged, accumulating the union of their split values.
func mineCombos(model *gbdt.Model, arities []int) []Combo {
	wantArity := make(map[int]bool, len(arities))
	maxArity := 0
	for _, a := range arities {
		wantArity[a] = true
		if a > maxArity {
			maxArity = a
		}
	}
	merged := make(map[comboKey]*Combo)

	add := func(feats []int, values map[int][]float64) {
		sorted := append([]int(nil), feats...)
		sort.Ints(sorted)
		k := keyOf(sorted)
		c, ok := merged[k]
		if !ok {
			c = &Combo{Features: sorted, Values: make([][]float64, len(sorted))}
			merged[k] = c
		}
		for i, f := range sorted {
			c.Values[i] = mergeSorted(c.Values[i], values[f])
		}
	}

	for _, p := range model.Paths() {
		feats := p.Features
		if wantArity[1] {
			for _, f := range feats {
				add([]int{f}, p.Values)
			}
		}
		if wantArity[2] {
			for i := 0; i < len(feats); i++ {
				for j := i + 1; j < len(feats); j++ {
					add([]int{feats[i], feats[j]}, p.Values)
				}
			}
		}
		if wantArity[3] {
			for i := 0; i < len(feats); i++ {
				for j := i + 1; j < len(feats); j++ {
					for k := j + 1; k < len(feats); k++ {
						add([]int{feats[i], feats[j], feats[k]}, p.Values)
					}
				}
			}
		}
	}

	out := make([]Combo, 0, len(merged))
	for _, c := range merged {
		out = append(out, *c)
	}
	// Deterministic order before scoring (map iteration is random).
	sort.Slice(out, func(i, j int) bool {
		return keyLess(keyOf(out[i].Features), keyOf(out[j].Features))
	})
	return out
}

func keyLess(a, b comboKey) bool {
	if a.a != b.a {
		return a.a < b.a
	}
	if a.b != b.b {
		return a.b < b.b
	}
	return a.c < b.c
}

func mergeSorted(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v float64
		switch {
		case i == len(a):
			v = b[j]
			j++
		case j == len(b):
			v = a[i]
			i++
		case a[i] <= b[j]:
			v = a[i]
			if a[i] == b[j] {
				j++
			}
			i++
		default:
			v = b[j]
			j++
		}
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// maxPartitionCells bounds the partition size when scoring a combination:
// beyond this the split values are thinned to keep the gain-ratio
// computation O(N) with a small constant.
const maxPartitionCells = 1024

// scoreCombos computes the gain ratio of every combination over the
// training data (Algorithm 2): the combo's split values partition the rows
// into prod_i (|V_i|+1) cells, scored with the task's criterion — binary
// information gain ratio, its K-class generalisation, or the regression
// variance-reduction ratio. Scoring is combo-parallel on the shared pool;
// each chunk reuses one row-partition buffer across its combos. A cancelled
// context stops further combos from being scored and returns ctx.Err() —
// partially filled GainRatios must then be discarded by the caller.
func scoreCombos(ctx context.Context, combos []Combo, cols [][]float64, labels []float64, task Task, pool *parallel.Pool) error {
	ratio := func(parts []int, cells int) float64 {
		switch task.Kind {
		case TaskMulticlass:
			return stats.GainRatioClasses(labels, parts, cells, task.Classes)
		case TaskRegression:
			return stats.VarGainRatio(labels, parts, cells)
		default:
			return stats.GainRatio(labels, parts, cells)
		}
	}
	score := func(c *Combo, parts []int) {
		cc := NewComboCells(c)
		if cc.cells <= 1 {
			c.GainRatio = 0
			return
		}
		for r := range parts {
			// Inline CellOf over the row's combo features (avoids a
			// per-row gather). NaN maps to index 0, as the binary search did.
			id := 0
			for i, f := range c.Features {
				v := cols[f][r]
				j := 0
				if v == v {
					j = cc.ix[i].Find(v)
				}
				id = id*cc.radix[i] + j
			}
			parts[r] = id
		}
		c.GainRatio = ratio(parts, cc.cells)
	}

	return pool.ForChunksCtx(ctx, len(combos), pool.Grain(len(combos)), func(lo, hi int) {
		parts := make([]int, len(labels))
		for i := lo; i < hi; i++ {
			score(&combos[i], parts)
		}
	})
}

// thinValues reduces split-value sets so the partition stays under
// maxPartitionCells, keeping evenly spaced representatives (always the
// extremes).
func thinValues(values [][]float64) [][]float64 {
	out := make([][]float64, len(values))
	copy(out, values)
	cells := 1
	for _, vs := range out {
		cells *= len(vs) + 1
	}
	for cells > maxPartitionCells {
		// Halve the largest value set.
		argmax, maxLen := -1, 1
		for i, vs := range out {
			if len(vs) > maxLen {
				maxLen = len(vs)
				argmax = i
			}
		}
		if argmax < 0 {
			break
		}
		vs := out[argmax]
		keep := (len(vs) + 1) / 2
		thinned := make([]float64, 0, keep)
		for k := 0; k < keep; k++ {
			thinned = append(thinned, vs[k*len(vs)/keep])
		}
		cells = cells / (len(vs) + 1) * (len(thinned) + 1)
		out[argmax] = thinned
	}
	return out
}

// topCombos sorts combinations by gain ratio (descending, ties broken by
// feature indices for determinism) and returns the best gamma per arity
// bucket merged into one list (Algorithm 2's output P̃).
func topCombos(combos []Combo, gamma int) []Combo {
	sort.Slice(combos, func(i, j int) bool {
		if combos[i].GainRatio != combos[j].GainRatio {
			return combos[i].GainRatio > combos[j].GainRatio
		}
		return keyLess(keyOf(combos[i].Features), keyOf(combos[j].Features))
	})
	if gamma > 0 && len(combos) > gamma {
		combos = combos[:gamma]
	}
	return combos
}
