package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/operators"
)

// pipelineJSON is the on-disk representation of a Pipeline.
type pipelineJSON struct {
	Version       int        `json:"version"`
	Task          string     `json:"task,omitempty"` // absent in pre-task files => binary
	OriginalNames []string   `json:"original_names"`
	Nodes         []nodeJSON `json:"nodes"`
	Output        []string   `json:"output"`
}

type nodeJSON struct {
	Name   string          `json:"name"`
	Inputs []string        `json:"inputs"`
	Kind   string          `json:"kind"`
	Data   json.RawMessage `json:"data"`
}

const pipelineVersion = 1

// MarshalJSON serialises the pipeline, including every fitted operator's
// learned parameters, so Ψ can be trained offline and loaded by a serving
// process. Custom appliers must implement operators.PersistableApplier.
func (p *Pipeline) MarshalJSON() ([]byte, error) {
	out := pipelineJSON{
		Version:       pipelineVersion,
		Task:          p.Task.String(),
		OriginalNames: p.OriginalNames,
		Output:        p.Output,
	}
	for i := range p.Nodes {
		n := &p.Nodes[i]
		kind, data, err := operators.EncodeApplier(n.Applier)
		if err != nil {
			return nil, fmt.Errorf("core: marshal node %q: %w", n.Name, err)
		}
		out.Nodes = append(out.Nodes, nodeJSON{
			Name: n.Name, Inputs: n.Inputs, Kind: kind, Data: data,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON reconstructs a pipeline saved by MarshalJSON.
func (p *Pipeline) UnmarshalJSON(data []byte) error {
	var in pipelineJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("core: unmarshal pipeline: %w", err)
	}
	if in.Version != pipelineVersion {
		return fmt.Errorf("core: unsupported pipeline version %d (want %d)", in.Version, pipelineVersion)
	}
	task, err := ParseTask(in.Task)
	if err != nil {
		return err
	}
	p.Task = task
	p.OriginalNames = in.OriginalNames
	p.Output = in.Output
	p.Nodes = p.Nodes[:0]
	for _, n := range in.Nodes {
		applier, err := operators.DecodeApplier(n.Kind, n.Data)
		if err != nil {
			return fmt.Errorf("core: unmarshal node %q: %w", n.Name, err)
		}
		p.Nodes = append(p.Nodes, FeatureNode{Name: n.Name, Inputs: n.Inputs, Applier: applier})
	}
	return p.validateTopology()
}

// validateTopology confirms every node input and every output resolves to an
// original column or an earlier node — the invariant Transform relies on.
func (p *Pipeline) validateTopology() error {
	known := make(map[string]bool, len(p.OriginalNames)+len(p.Nodes))
	for _, n := range p.OriginalNames {
		known[n] = true
	}
	for i := range p.Nodes {
		for _, dep := range p.Nodes[i].Inputs {
			if !known[dep] {
				return fmt.Errorf("core: pipeline node %q depends on unknown column %q",
					p.Nodes[i].Name, dep)
			}
		}
		known[p.Nodes[i].Name] = true
	}
	for _, out := range p.Output {
		if !known[out] {
			return fmt.Errorf("core: pipeline output %q is not produced by any node", out)
		}
	}
	return nil
}

// Save writes the pipeline as JSON to w.
func (p *Pipeline) Save(w io.Writer) error {
	data, err := p.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// SaveFile writes the pipeline to a JSON file.
func (p *Pipeline) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadPipeline reads a pipeline saved with Save.
func LoadPipeline(r io.Reader) (*Pipeline, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: load pipeline: %w", err)
	}
	p := &Pipeline{}
	if err := p.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return p, nil
}

// LoadPipelineFile reads a pipeline from a JSON file.
func LoadPipelineFile(path string) (*Pipeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return LoadPipeline(f)
}
