package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/frame"
)

// Failure-injection tests: SAFE must degrade gracefully, never panic, on
// pathological inputs an industrial pipeline will inevitably see.

func makeFrame(cols map[string][]float64, labels []float64) *frame.Frame {
	f := &frame.Frame{Label: labels}
	// Deterministic column order.
	names := make([]string, 0, len(cols))
	for n := range cols {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		f.AddColumn(n, cols[n])
	}
	return f
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func randCol(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func TestFitAllConstantColumns(t *testing.T) {
	n := 500
	konst := make([]float64, n)
	for i := range konst {
		konst[i] = 7
	}
	labels := make([]float64, n)
	for i := range labels {
		labels[i] = float64(i % 2)
	}
	f := makeFrame(map[string][]float64{
		"c1": konst,
		"c2": append([]float64(nil), konst...),
		"c3": randCol(n, 1),
	}, labels)
	eng, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := eng.Fit(f)
	if err != nil {
		t.Fatalf("constant columns broke Fit: %v", err)
	}
	if p.NumFeatures() == 0 {
		t.Error("empty pipeline on constant-heavy frame")
	}
}

func TestFitSingleClassLabels(t *testing.T) {
	n := 300
	labels := make([]float64, n) // all zero
	f := makeFrame(map[string][]float64{
		"a": randCol(n, 2),
		"b": randCol(n, 3),
	}, labels)
	eng, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := eng.Fit(f)
	if err != nil {
		t.Fatalf("single-class labels broke Fit: %v", err)
	}
	if _, err := p.Transform(f); err != nil {
		t.Fatal(err)
	}
}

func TestFitWithNaNColumns(t *testing.T) {
	n := 800
	half := randCol(n, 4)
	for i := 0; i < n; i += 3 {
		half[i] = math.NaN()
	}
	allNaN := make([]float64, n)
	for i := range allNaN {
		allNaN[i] = math.NaN()
	}
	labels := make([]float64, n)
	sig := randCol(n, 5)
	for i := range labels {
		if sig[i] > 0 {
			labels[i] = 1
		}
	}
	f := makeFrame(map[string][]float64{
		"partial": half,
		"allnan":  allNaN,
		"signal":  sig,
		"noise":   randCol(n, 6),
	}, labels)
	eng, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := eng.Fit(f)
	if err != nil {
		t.Fatalf("NaN columns broke Fit: %v", err)
	}
	out, err := p.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	// Engineered (derived) outputs must be sanitised to finite values;
	// original passthrough columns may retain their NaNs.
	orig := map[string]bool{"partial": true, "allnan": true, "signal": true, "noise": true}
	for _, c := range out.Columns {
		if orig[c.Name] {
			continue
		}
		for i, v := range c.Values {
			if math.IsInf(v, 0) {
				t.Fatalf("derived column %q row %d is Inf", c.Name, i)
			}
		}
	}
}

func TestFitTwoRows(t *testing.T) {
	f := makeFrame(map[string][]float64{
		"a": {1, 2},
		"b": {3, 4},
	}, []float64{0, 1})
	eng, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Fit(f); err != nil {
		t.Fatalf("two-row frame broke Fit: %v", err)
	}
}

func TestFitDuplicateColumns(t *testing.T) {
	// Identical columns under different names: Pearson dedup should keep
	// one; Fit must not error.
	n := 600
	base := randCol(n, 7)
	labels := make([]float64, n)
	for i := range labels {
		if base[i] > 0 {
			labels[i] = 1
		}
	}
	f := makeFrame(map[string][]float64{
		"dup1": base,
		"dup2": append([]float64(nil), base...),
		"dup3": append([]float64(nil), base...),
	}, labels)
	eng, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := eng.Fit(f)
	if err != nil {
		t.Fatal(err)
	}
	// At most one copy of the duplicated original should survive selection.
	seen := 0
	for _, name := range p.Output {
		if name == "dup1" || name == "dup2" || name == "dup3" {
			seen++
		}
	}
	if seen > 1 {
		t.Errorf("%d identical originals survived Pearson dedup", seen)
	}
}

func TestFitWithTernaryOperator(t *testing.T) {
	ds, err := datagen.Generate(datagen.Spec{
		Name: "ternary", Train: 2000, Test: 500, Dim: 8,
		Interactions: 3, SignalScale: 2.5, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Operators = []string{"mul", "div", "cond"}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, report, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	if report.Iterations[0].Generated == 0 {
		t.Error("no features generated with ternary operator in the set")
	}
	if _, err := p.Transform(ds.Test); err != nil {
		t.Fatal(err)
	}
}

func TestFitWithUnaryOperators(t *testing.T) {
	ds, err := datagen.Generate(datagen.Spec{
		Name: "unary", Train: 2000, Test: 500, Dim: 8,
		Interactions: 3, SignalScale: 2.5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Operators = []string{"log", "sqrt", "square", "bin_chimerge"}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, report, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	if report.Iterations[0].Generated == 0 {
		t.Error("no unary features generated")
	}
	// Round-trip through serialisation with fitted unary operators.
	out, err := p.Transform(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != ds.Test.NumRows() {
		t.Errorf("rows = %d", out.NumRows())
	}
}

func TestFitExtremeValues(t *testing.T) {
	n := 500
	big := make([]float64, n)
	tiny := make([]float64, n)
	rng := rand.New(rand.NewSource(10))
	labels := make([]float64, n)
	for i := range big {
		big[i] = rng.NormFloat64() * 1e150
		tiny[i] = rng.NormFloat64() * 1e-150
		if big[i] > 0 {
			labels[i] = 1
		}
	}
	f := makeFrame(map[string][]float64{"big": big, "tiny": tiny}, labels)
	eng, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := eng.Fit(f)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	orig := map[string]bool{"big": true, "tiny": true}
	for _, c := range out.Columns {
		if orig[c.Name] {
			continue
		}
		for _, v := range c.Values {
			// big*big overflows to Inf; sanitisation must squash derived
			// values to finite.
			if math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("derived column %q contains %v", c.Name, v)
			}
		}
	}
}
