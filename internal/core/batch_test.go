package core

import (
	"math"
	"testing"

	"repro/internal/datagen"
)

// TestTransformBatchMatchesRow checks the serving-side contract: evaluating
// a batch in one columnar pass must agree with row-at-a-time evaluation.
func TestTransformBatchMatchesRow(t *testing.T) {
	ds, err := datagen.Generate(datagen.Spec{
		Name: "batch-test", Train: 1500, Test: 300, Dim: 8,
		Interactions: 3, SignalScale: 2.5, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}

	n := 64
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = ds.Test.Row(i, nil)
	}
	batch, err := p.TransformBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != n {
		t.Fatalf("batch returned %d rows, want %d", len(batch), n)
	}
	for i, row := range rows {
		want, err := p.TransformRow(row)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i]) != len(want) {
			t.Fatalf("row %d: batch width %d, row width %d", i, len(batch[i]), len(want))
		}
		for j := range want {
			if math.Float64bits(batch[i][j]) != math.Float64bits(want[j]) {
				t.Fatalf("row %d feature %d: batch %v != row %v", i, j, batch[i][j], want[j])
			}
		}
	}
}

func TestTransformBatchErrors(t *testing.T) {
	p := &Pipeline{OriginalNames: []string{"a", "b"}, Output: []string{"a"}}
	if out, err := p.TransformBatch(nil); err != nil || out != nil {
		t.Errorf("empty batch: got (%v, %v), want (nil, nil)", out, err)
	}
	if _, err := p.TransformBatch([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("accepted a ragged batch")
	}
	bad := &Pipeline{OriginalNames: []string{"a"}, Output: []string{"missing"}}
	if _, err := bad.TransformBatch([][]float64{{1}}); err == nil {
		t.Error("accepted unknown output column")
	}
}
