package core

import "time"

// This file defines the structured progress-event stream a fit emits.
// Both engines — the in-memory Engineer and the sharded coordinator in
// internal/shard — report through the same FitEvent type, so a consumer
// (CLI progress output, an embedder's metrics hook) observes one protocol
// regardless of which engine the plan selected. The same instrumentation
// populates the per-stage wall-clock fields of IterationReport.

// EventKind discriminates FitEvent payloads.
type EventKind int

const (
	// EventFitStart opens a fit (Round 0).
	EventFitStart EventKind = iota
	// EventIterationStart opens one SAFE iteration (Round is 1-based).
	EventIterationStart
	// EventStageStart opens one stage of an iteration; Candidates carries
	// the stage's input size where meaningful.
	EventStageStart
	// EventStageEnd closes a stage: Candidates/Survivors carry the stage's
	// input and output sizes, Elapsed its wall time.
	EventStageEnd
	// EventIterationEnd closes an iteration; Survivors is the round's
	// selected feature count, Elapsed the iteration wall time.
	EventIterationEnd
	// EventFitEnd closes the fit; Survivors is the final selected feature
	// count, Elapsed the total wall time.
	EventFitEnd
)

// String returns the kind's wire/display name.
func (k EventKind) String() string {
	switch k {
	case EventFitStart:
		return "fit-start"
	case EventIterationStart:
		return "iteration-start"
	case EventStageStart:
		return "stage-start"
	case EventStageEnd:
		return "stage-end"
	case EventIterationEnd:
		return "iteration-end"
	case EventFitEnd:
		return "fit-end"
	}
	return "unknown"
}

// Stage identifies one stage of a SAFE iteration, in execution order.
type Stage int

const (
	// StageMine trains the combination-mining XGBoost (Algorithm 1 line 3).
	StageMine Stage = iota
	// StageScore gain-ratio-scores and top-γ-filters the mined
	// combinations (Algorithm 2).
	StageScore
	// StageGenerate applies the operator set to the kept combinations,
	// streaming candidates through the IV scorer (Algorithm 1 lines 6-7).
	StageGenerate
	// StageIVFilter resolves the Information-Value survivor set
	// (Algorithm 3).
	StageIVFilter
	// StagePearson removes redundant candidates (Algorithm 4).
	StagePearson
	// StageRank trains the ranking XGBoost and applies the output budget
	// (Algorithm 1 line 10).
	StageRank
)

// String returns the stage's wire/display name.
func (s Stage) String() string {
	switch s {
	case StageMine:
		return "mine"
	case StageScore:
		return "score"
	case StageGenerate:
		return "generate"
	case StageIVFilter:
		return "iv-filter"
	case StagePearson:
		return "pearson"
	case StageRank:
		return "rank"
	}
	return "unknown"
}

// FitEvent is one element of a fit's progress stream: iteration and stage
// boundaries with candidate/survivor counts, rows processed, and wall
// times. Events are delivered synchronously from the fitting goroutine in
// strictly increasing order of occurrence; a consumer that needs to do
// slow work must hand the event off and return quickly, and must not call
// back into the fit.
type FitEvent struct {
	Kind  EventKind
	Round int   // 1-based iteration; 0 for fit-scoped events
	Stage Stage // meaningful for stage events only

	// Candidates is the stage's input feature/combination count,
	// Survivors its output count (Survivors on End kinds only).
	Candidates int
	Survivors  int

	// Rows is the cumulative number of rows processed when the event
	// fired: rows scanned by full-data stages for the in-memory engine,
	// rows streamed from the source for the sharded engine.
	Rows int64

	// Elapsed is the wall time of the span an End kind closes.
	Elapsed time.Duration
}

// EventFunc consumes fit progress events; see FitEvent for the delivery
// contract.
type EventFunc func(FitEvent)

// Emit delivers an event to the configured consumer, if any.
func (c *Config) Emit(ev FitEvent) {
	if c.Events != nil {
		c.Events(ev)
	}
}

// StageClock instruments one iteration's stages: it emits the paired
// start/end events and accumulates per-stage wall times into the
// IterationReport — one instrument feeding both the event stream and the
// report, so they cannot disagree.
type StageClock struct {
	cfg   *Config
	ir    *IterationReport
	rows  *int64 // cumulative rows-processed counter shared with the engine
	stage Stage
	in    int
	start time.Time
}

func NewStageClock(cfg *Config, ir *IterationReport, rows *int64) *StageClock {
	return &StageClock{cfg: cfg, ir: ir, rows: rows}
}

// Begin opens a stage with the given input size.
func (sc *StageClock) Begin(stage Stage, candidates int) {
	sc.stage, sc.in = stage, candidates
	sc.start = time.Now()
	sc.cfg.Emit(FitEvent{
		Kind: EventStageStart, Round: sc.ir.Round, Stage: stage,
		Candidates: candidates, Rows: *sc.rows,
	})
}

// AddRows credits n processed rows to the running total.
func (sc *StageClock) AddRows(n int64) { *sc.rows += n }

// End closes the open stage with its output size and records its wall time
// in the IterationReport.
func (sc *StageClock) End(survivors int) {
	elapsed := time.Since(sc.start)
	switch sc.stage {
	case StageMine:
		sc.ir.MineTime += elapsed
	case StageScore:
		sc.ir.ScoreTime += elapsed
	case StageGenerate:
		sc.ir.GenerateTime += elapsed
	case StageIVFilter:
		sc.ir.IVTime += elapsed
	case StagePearson:
		sc.ir.PearsonTime += elapsed
	case StageRank:
		sc.ir.RankTime += elapsed
	}
	sc.cfg.Emit(FitEvent{
		Kind: EventStageEnd, Round: sc.ir.Round, Stage: sc.stage,
		Candidates: sc.in, Survivors: survivors, Rows: *sc.rows, Elapsed: elapsed,
	})
}
