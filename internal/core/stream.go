package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/operators"
	"repro/internal/parallel"
)

// This file implements the streaming generate-and-filter stage of Fit:
// candidate features are generated chunk by chunk and IV-filtered as soon
// as a chunk completes, so the candidate set X̂ of Algorithm 1 never fully
// materialises. Columns of candidates the IV filter rejects go straight
// back to the arena, turning per-round allocation from O(candidates) into
// O(selected). The observable results (candidate counts, surviving set,
// selection) are identical to the materialise-then-filter formulation.

// genSpec records how a generated candidate is computed: the operator and
// the indices of its inputs in the round's live set.
type genSpec struct {
	op    operators.Operator
	feats []int
}

// candEntry is one candidate of a round: a base (live) feature or a
// generated one. Generated entries whose IV fails the filter have their
// column recycled (lf.train == nil, dropped == true) but keep their spec so
// the rare min-keep fallback can regenerate them.
type candEntry struct {
	lf      *liveFeature
	spec    genSpec // zero op for base features
	applier operators.Applier
	iv      float64
	dropped bool
}

// streamChunk is how many generated candidates buffer between IV flushes:
// large enough to keep the pool busy, small enough that the transient
// column memory stays modest (streamChunk × rows × 8 bytes).
const streamChunk = 32

// candidateStream owns the per-round streaming state.
type candidateStream struct {
	ctx      context.Context
	cfg      *Config
	pool     *parallel.Pool
	arena    *operators.Arena
	live     []*liveFeature
	labels   []float64
	existing map[string]bool

	entries   []*candEntry // all candidates in deterministic order
	pending   []*candEntry // generated, awaiting IV
	ivBuf     []float64
	colsBuf   [][]float64
	generated int // total generated (post formula-dedup), including dropped
	// ivTime accumulates the wall time spent inside the criterion
	// computations the stream interleaves with generation, so the fit can
	// attribute it to the IV stage rather than generation.
	ivTime time.Duration
}

func newCandidateStream(ctx context.Context, cfg *Config, pool *parallel.Pool, arena *operators.Arena, live []*liveFeature, labels []float64) *candidateStream {
	st := &candidateStream{
		ctx:      ctx,
		cfg:      cfg,
		pool:     pool,
		arena:    arena,
		live:     live,
		labels:   labels,
		existing: make(map[string]bool, 2*len(live)),
		entries:  make([]*candEntry, 0, 2*len(live)),
		pending:  make([]*candEntry, 0, streamChunk),
	}
	for _, lf := range live {
		st.existing[lf.name] = true
	}
	return st
}

// addBase registers the round's live features as candidates and computes
// their IVs in one parallel sweep (they are filtered like any candidate but
// their columns are frame- or prior-round-owned, so never recycled here).
func (st *candidateStream) addBase() {
	cols := make([][]float64, len(st.live))
	for i, lf := range st.live {
		cols[i] = lf.train
	}
	t0 := time.Now()
	ivs := computeCriteria(cols, st.labels, st.cfg.Task, st.cfg.IVBins, st.cfg.IVEqualWidth, st.pool)
	st.ivTime += time.Since(t0)
	for i, lf := range st.live {
		lf.iv = ivs[i]
		st.entries = append(st.entries, &candEntry{lf: lf, iv: ivs[i]})
	}
}

// generate applies op to the live features at feats, queueing the new
// candidate for the next IV flush. Duplicate formulas are skipped. The
// context is checked per candidate, making generation the most finely
// cancellable stage of a fit.
func (st *candidateStream) generate(op operators.Operator, feats []int) error {
	if err := st.ctx.Err(); err != nil {
		return err
	}
	in := make([][]float64, len(feats))
	names := make([]string, len(feats))
	for i, f := range feats {
		in[i] = st.live[f].train
		names[i] = st.live[f].name
	}
	if d, ok := op.(*operators.DiscretizeOp); ok {
		d.SetLabels(st.labels)
	}
	applier, err := op.Fit(in)
	if err != nil {
		return fmt.Errorf("core: generate %s: %w", op.Name(), err)
	}
	name := applier.Formula(names)
	if st.existing[name] {
		return nil
	}
	st.existing[name] = true
	st.generated++

	buf := st.arena.Get()
	operators.TransformColumn(applier, in, buf)
	sanitize(buf)
	lf := &liveFeature{
		name:   name,
		train:  buf,
		pooled: true,
		node: &FeatureNode{
			Name:    name,
			Inputs:  names,
			Applier: applier,
		},
	}
	st.pending = append(st.pending, &candEntry{
		lf:      lf,
		spec:    genSpec{op: op, feats: append([]int(nil), feats...)},
		applier: applier,
	})
	if len(st.pending) >= streamChunk {
		st.flush()
	}
	return nil
}

// flush IV-scores the pending chunk in parallel and applies the stream
// filter: candidates at or below the threshold hand their column back to
// the arena immediately.
func (st *candidateStream) flush() {
	if len(st.pending) == 0 {
		return
	}
	if cap(st.ivBuf) < len(st.pending) {
		st.ivBuf = make([]float64, len(st.pending))
		st.colsBuf = make([][]float64, len(st.pending))
	}
	ivs := st.ivBuf[:len(st.pending)]
	cols := st.colsBuf[:len(st.pending)]
	cfg := st.cfg
	pending := st.pending
	for i, en := range pending {
		cols[i] = en.lf.train
	}
	t0 := time.Now()
	computeCriteriaInto(ivs, cols, st.labels, cfg.Task, cfg.IVBins, cfg.IVEqualWidth, st.pool)
	st.ivTime += time.Since(t0)
	for i, en := range pending {
		en.iv = ivs[i]
		en.lf.iv = ivs[i]
		if en.iv <= cfg.IVThreshold {
			en.dropped = true
			st.arena.Put(en.lf.train)
			en.lf.train = nil
		}
		st.entries = append(st.entries, en)
	}
	st.pending = st.pending[:0]
}

// finish flushes the tail chunk and returns every candidate entry.
func (st *candidateStream) finish() []*candEntry {
	st.flush()
	return st.entries
}

// keptAfterIV returns the indices (into entries) surviving Algorithm 3:
// IV strictly above the threshold, with the same top-minKeep fallback the
// ivFilter helper applies. Fallback winners whose columns were recycled are
// regenerated from their specs.
func (st *candidateStream) keptAfterIV(entries []*candEntry, minKeep int) []int {
	ivs := make([]float64, len(entries))
	for i, en := range entries {
		ivs[i] = en.iv
	}
	kept := ivFilter(ivs, st.cfg.IVThreshold, minKeep)
	for _, idx := range kept {
		if en := entries[idx]; en.dropped {
			st.regenerate(en)
		}
	}
	return kept
}

// regenerate rebuilds a recycled candidate column from its fitted applier.
func (st *candidateStream) regenerate(en *candEntry) {
	in := make([][]float64, len(en.spec.feats))
	for i, f := range en.spec.feats {
		in[i] = st.live[f].train
	}
	buf := st.arena.Get()
	operators.TransformColumn(en.applier, in, buf)
	sanitize(buf)
	en.lf.train = buf
	en.dropped = false
}
