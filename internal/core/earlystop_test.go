package core

import (
	"testing"

	"repro/internal/datagen"
)

func validatedDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "es-test", Train: 3000, Valid: 800, Test: 800, Dim: 10,
		Informative: 2, Interactions: 3, SignalScale: 2.5, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFitWithValidationReportsAUC(t *testing.T) {
	ds := validatedDataset(t)
	cfg := DefaultConfig()
	cfg.Iterations = 2
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := eng.FitWithValidation(ds.Train, ds.Valid)
	if err != nil {
		t.Fatal(err)
	}
	for _, ir := range report.Iterations {
		if ir.ValidAUC <= 0 || ir.ValidAUC > 1 {
			t.Errorf("round %d ValidAUC = %v, want (0,1]", ir.Round, ir.ValidAUC)
		}
	}
}

func TestFitWithValidationRequiresValid(t *testing.T) {
	ds := validatedDataset(t)
	eng, _ := New(DefaultConfig())
	if _, _, err := eng.FitWithValidation(ds.Train, nil); err == nil {
		t.Error("accepted nil validation frame")
	}
	unlabelled := ds.Valid.Clone()
	unlabelled.Label = nil
	if _, _, err := eng.FitWithValidation(ds.Train, unlabelled); err == nil {
		t.Error("accepted unlabelled validation frame")
	}
}

func TestFitWithValidationSchemaMismatch(t *testing.T) {
	ds := validatedDataset(t)
	eng, _ := New(DefaultConfig())
	badValid := ds.Valid.Clone()
	badValid.Columns[0].Name = "renamed"
	if _, _, err := eng.FitWithValidation(ds.Train, badValid); err == nil {
		t.Error("accepted validation frame with mismatched columns")
	}
}

func TestEarlyStoppingHaltsIterations(t *testing.T) {
	ds := validatedDataset(t)
	cfg := DefaultConfig()
	cfg.Iterations = 8
	cfg.Patience = 1
	cfg.MinDelta = 0.5 // impossible improvement: must stop after round 2
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := eng.FitWithValidation(ds.Train, ds.Valid)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Iterations) > 2 {
		t.Errorf("ran %d rounds despite patience 1 and unreachable MinDelta", len(report.Iterations))
	}
}

func TestEarlyStoppingKeepsBestRound(t *testing.T) {
	ds := validatedDataset(t)
	cfg := DefaultConfig()
	cfg.Iterations = 3
	cfg.Patience = 3 // never stops early within 3 rounds
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, report, err := eng.FitWithValidation(ds.Train, ds.Valid)
	if err != nil {
		t.Fatal(err)
	}
	// The pipeline must evaluate: transform test successfully with the best
	// round's width equal to one of the reported selections.
	out, err := p.Transform(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	widths := map[int]bool{}
	for _, ir := range report.Iterations {
		widths[ir.Selected] = true
	}
	if !widths[out.NumCols()] {
		t.Errorf("pipeline width %d matches no round's selection %v", out.NumCols(), widths)
	}
}

func TestFitWithValidationPipelineConsistency(t *testing.T) {
	// Valid-aware generation must produce the same pipeline semantics:
	// batch transform of valid equals the internally tracked valid values
	// (spot-checked through a transform round-trip).
	ds := validatedDataset(t)
	cfg := DefaultConfig()
	cfg.Iterations = 2
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := eng.FitWithValidation(ds.Train, ds.Valid)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Transform(ds.Valid)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != ds.Valid.NumRows() {
		t.Errorf("rows = %d, want %d", out.NumRows(), ds.Valid.NumRows())
	}
}
