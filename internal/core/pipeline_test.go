package core

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/operators"
)

// buildManualPipeline constructs a small pipeline by hand: c = a+b,
// d = c*a, output {a, d}. Node c is a pure intermediate.
func buildManualPipeline(t *testing.T) *Pipeline {
	t.Helper()
	add, err := operators.NewRegistry().Get("add")
	if err != nil {
		t.Fatal(err)
	}
	mul, err := operators.NewRegistry().Get("mul")
	if err != nil {
		t.Fatal(err)
	}
	dummy := [][]float64{{0}, {0}}
	addAp, err := add.Fit(dummy)
	if err != nil {
		t.Fatal(err)
	}
	mulAp, err := mul.Fit(dummy)
	if err != nil {
		t.Fatal(err)
	}
	return &Pipeline{
		OriginalNames: []string{"a", "b"},
		Nodes: []FeatureNode{
			{Name: "c", Inputs: []string{"a", "b"}, Applier: addAp},
			{Name: "d", Inputs: []string{"c", "a"}, Applier: mulAp},
		},
		Output: []string{"a", "d"},
	}
}

func TestPipelineEvaluatesDAG(t *testing.T) {
	p := buildManualPipeline(t)
	f := &frame.Frame{
		Columns: []frame.Column{
			{Name: "a", Values: []float64{2, 3}},
			{Name: "b", Values: []float64{10, 20}},
		},
	}
	out, err := p.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	// d = (a+b)*a.
	if got := out.Columns[1].Values[0]; got != 24 {
		t.Errorf("d[0] = %v, want 24", got)
	}
	if got := out.Columns[1].Values[1]; got != 69 {
		t.Errorf("d[1] = %v, want 69", got)
	}
	// Row-wise agrees.
	row, err := p.TransformRow([]float64{2, 10})
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 2 || row[1] != 24 {
		t.Errorf("TransformRow = %v, want [2 24]", row)
	}
}

func TestPipelinePruneKeepsTransitiveDeps(t *testing.T) {
	p := buildManualPipeline(t)
	p.prune()
	// Node c must survive: d depends on it even though c is not an output.
	if len(p.Nodes) != 2 {
		t.Fatalf("prune removed a needed intermediate: %d nodes", len(p.Nodes))
	}
}

func TestPipelinePruneDropsUnused(t *testing.T) {
	p := buildManualPipeline(t)
	p.Output = []string{"a"} // d (and hence c) now unused
	p.prune()
	if len(p.Nodes) != 0 {
		t.Errorf("prune kept %d unused nodes", len(p.Nodes))
	}
}

func TestPipelineTransformMissingColumn(t *testing.T) {
	p := buildManualPipeline(t)
	f := &frame.Frame{Columns: []frame.Column{{Name: "a", Values: []float64{1}}}}
	if _, err := p.Transform(f); err == nil {
		t.Error("transform accepted a frame missing column b")
	}
}

func TestPipelineTransformUnknownOutput(t *testing.T) {
	p := buildManualPipeline(t)
	p.Output = append(p.Output, "ghost")
	f := &frame.Frame{
		Columns: []frame.Column{
			{Name: "a", Values: []float64{1}},
			{Name: "b", Values: []float64{2}},
		},
	}
	if _, err := p.Transform(f); err == nil {
		t.Error("transform accepted an unknown output column")
	}
	if _, err := p.TransformRow([]float64{1, 2}); err == nil {
		t.Error("TransformRow accepted an unknown output column")
	}
}

func TestNumDerived(t *testing.T) {
	p := buildManualPipeline(t)
	if got := p.NumDerived(); got != 1 { // d is derived, a is original
		t.Errorf("NumDerived = %d, want 1", got)
	}
	if got := p.NumFeatures(); got != 2 {
		t.Errorf("NumFeatures = %d, want 2", got)
	}
}

func TestValidateTopologyCatchesCycles(t *testing.T) {
	p := buildManualPipeline(t)
	// Make node c depend on d (defined later): forward reference.
	p.Nodes[0].Inputs = []string{"a", "d"}
	if err := p.validateTopology(); err == nil {
		t.Error("topology validation accepted a forward reference")
	}
}
