// Package core implements SAFE itself (Algorithm 1 of the paper): iterative
// feature generation guided by XGBoost path mining (Section IV-B) followed
// by the three-stage selection pipeline (Section IV-C).
//
// The flow is:
//
//   - Engineer.Fit runs the offline loop. Each iteration trains a gradient
//     boosting model on the current representation, mines frequently
//     co-occurring feature pairs from its tree paths (base generation),
//     expands them through the operator registry (operators package) into
//     candidate features, and keeps the survivors of selection.
//
//   - Selection (selection.go, select_api.go) is the three-stage filter of
//     Section IV-C: an Information Value screen (stats.ChiMerge binning),
//     a Pearson-correlation dedup, and a model-importance ranking.
//
//   - The result of Fit is a Pipeline — the learned feature generation
//     function Ψ. A Pipeline is a DAG of FeatureNodes over the original
//     columns; it transforms whole frames (Transform), dense row batches in
//     one columnar pass (TransformBatch, the serving hot path), or single
//     rows (TransformRow, minimal-latency inference).
//
//   - persist.go serialises a Pipeline, including every fitted operator's
//     learned parameters, so Ψ trains offline and loads in a serving
//     process (internal/serve) with no access to training data.
//
// Every generated feature carries an interpretable formula over the
// original columns (Pipeline.Formulas), per the paper's interpretability
// requirement.
package core
