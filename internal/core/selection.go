package core

import (
	"context"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/gbdt"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// computeCriteria calculates the task-appropriate relevance criterion of
// every column against the labels using equal-frequency binning — the
// Information Value of Algorithm 3 for the binary task, its per-class
// generalisation for multiclass, the correlation ratio η² for regression —
// column-parallel on the shared pool. Each chunk amortises one scratch
// across its columns.
func computeCriteria(cols [][]float64, labels []float64, task Task, bins int, equalWidth bool, pool *parallel.Pool) []float64 {
	out := make([]float64, len(cols))
	computeCriteriaInto(out, cols, labels, task, bins, equalWidth, pool)
	return out
}

func computeCriteriaInto(out []float64, cols [][]float64, labels []float64, task Task, bins int, equalWidth bool, pool *parallel.Pool) {
	switch task.Kind {
	case TaskMulticlass:
		pool.ForChunks(len(cols), pool.Grain(len(cols)), func(lo, hi int) {
			var s stats.CritScratch
			for j := lo; j < hi; j++ {
				out[j] = s.MulticlassIV(cols[j], labels, task.Classes, bins)
			}
		})
	case TaskRegression:
		pool.ForChunks(len(cols), pool.Grain(len(cols)), func(lo, hi int) {
			var s stats.CritScratch
			for j := lo; j < hi; j++ {
				out[j] = s.CorrelationRatio(cols[j], labels, bins)
			}
		})
	default:
		pool.ForChunks(len(cols), pool.Grain(len(cols)), func(lo, hi int) {
			var s stats.IVScratch
			for j := lo; j < hi; j++ {
				if equalWidth {
					out[j] = s.InformationValueWidth(cols[j], labels, bins)
				} else {
					out[j] = s.InformationValue(cols[j], labels, bins)
				}
			}
		})
	}
}

// ivFilter implements Algorithm 3: drop features whose IV is at or below the
// threshold alpha. To keep the pipeline robust on datasets where every
// feature is weak (possible with synthetic noise-heavy data), it falls back
// to the minKeep highest-IV features when fewer survive.
func ivFilter(ivs []float64, alpha float64, minKeep int) []int {
	kept := make([]int, 0, len(ivs))
	for j, iv := range ivs {
		if iv > alpha {
			kept = append(kept, j)
		}
	}
	if minKeep > len(ivs) {
		minKeep = len(ivs)
	}
	if len(kept) >= minKeep {
		return kept
	}
	// Fallback: top-minKeep by IV.
	idx := make([]int, len(ivs))
	for j := range idx {
		idx[j] = j
	}
	sort.Slice(idx, func(a, b int) bool {
		if ivs[idx[a]] != ivs[idx[b]] {
			return ivs[idx[a]] > ivs[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := append([]int(nil), idx[:minKeep]...)
	sort.Ints(out)
	return out
}

// pearsonDedup implements the intent of Algorithm 4: among features whose
// absolute Pearson correlation exceeds theta, keep the one with the higher
// IV. (The paper's pseudo-code as printed only *adds* the winner of each
// correlated pair and never admits uncorrelated features; the standard — and
// clearly intended — semantics implemented here is a greedy scan in
// descending-IV order that keeps a feature unless it correlates above theta
// with an already-kept feature.)
//
// Candidate columns are standardised once up front (column-parallel) so
// each pairwise correlation is a single dot product (Pearson(x,y) = x̃·ỹ/n),
// and the scans against the kept set run on the shared pool. The context is
// checked per candidate scan; a cancelled context returns ctx.Err().
func pearsonDedup(ctx context.Context, cols [][]float64, ivs []float64, candidates []int, theta float64, pool *parallel.Pool) ([]int, error) {
	order := append([]int(nil), candidates...)
	sort.Slice(order, func(a, b int) bool {
		if ivs[order[a]] != ivs[order[b]] {
			return ivs[order[a]] > ivs[order[b]]
		}
		return order[a] < order[b]
	})

	// Standardise candidates (NaN -> 0 == the mean after standardisation).
	stdByPos := make([][]float64, len(order))
	grain := len(order) / (4 * pool.Workers())
	err := pool.ForChunksCtx(ctx, len(order), grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			stdByPos[i] = standardizeCol(cols[order[i]])
		}
	})
	if err != nil {
		return nil, err
	}
	std := make(map[int][]float64, len(order))
	for i, j := range order {
		std[j] = stdByPos[i]
	}

	kept := make([]int, 0, len(order))
	for _, j := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if std[j] == nil {
			// Constant column: correlates with nothing by convention
			// (stats.Pearson returns 0); keep it — the ranker will bury it.
			kept = append(kept, j)
			continue
		}
		if corrAny(std, j, kept, theta, pool) {
			continue
		}
		kept = append(kept, j)
	}
	sort.Ints(kept)
	return kept, nil
}

// standardizeCol returns (x - mean)/std with NaNs mapped to 0, or nil for a
// constant column.
func standardizeCol(col []float64) []float64 {
	var sum float64
	n := 0
	for _, v := range col {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return nil
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range col {
		if !math.IsNaN(v) {
			d := v - mean
			ss += d * d
		}
	}
	stdv := math.Sqrt(ss / float64(n))
	if stdv < 1e-12 {
		return nil
	}
	out := make([]float64, len(col))
	for i, v := range col {
		if math.IsNaN(v) {
			out[i] = 0
			continue
		}
		out[i] = (v - mean) / stdv
	}
	return out
}

// corrAny reports whether standardised column j correlates above theta
// (absolute) with any column in kept. The scan is chunk-parallel with a
// shared early-exit flag; the answer (a pure any-of) is independent of
// which chunk finds a correlate first.
func corrAny(std map[int][]float64, j int, kept []int, theta float64, pool *parallel.Pool) bool {
	if len(kept) == 0 {
		return false
	}
	x := std[j]
	limit := theta * float64(len(x))
	check := func(k int) bool {
		y := std[k]
		if y == nil {
			return false
		}
		var dot float64
		for i, v := range x {
			dot += v * y[i]
		}
		return math.Abs(dot) > limit
	}
	var found atomic.Bool
	pool.ForChunks(len(kept), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if found.Load() {
				return
			}
			if check(kept[i]) {
				found.Store(true)
				return
			}
		}
	})
	return found.Load()
}

// rankByGain trains the ranking XGBoost on the candidate columns and orders
// them by average split gain (Section IV-C3), returning candidate indices in
// descending importance. Features the model never splits on rank last, tie
// broken by IV then index for determinism.
func rankByGain(ctx context.Context, cols [][]float64, labels []float64, ivs []float64, candidates []int, cfg gbdt.Config) ([]int, error) {
	sub := make([][]float64, len(candidates))
	for i, j := range candidates {
		sub[i] = cols[j]
	}
	model, err := gbdt.TrainCtx(ctx, sub, labels, nil, cfg)
	if err != nil {
		return nil, err
	}
	return OrderByGain(model.GainImportance(), ivs, candidates), nil
}
