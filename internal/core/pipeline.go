package core

import (
	"fmt"
	"math"

	"repro/internal/frame"
	"repro/internal/operators"
)

// FeatureNode is one computation step of a Pipeline: it derives a new column
// from previously available columns (original or earlier-derived) by
// applying a fitted operator.
type FeatureNode struct {
	// Name of the derived column (its interpretable formula).
	Name string
	// Inputs are names of the columns consumed, resolvable against the
	// original columns plus earlier nodes.
	Inputs []string
	// Applier is the fitted operator application.
	Applier operators.Applier
}

// Pipeline is the learned feature generation function Ψ : X -> Z. It
// evaluates derived features in dependency order and emits the selected
// output columns.
type Pipeline struct {
	// OriginalNames are the training frame's column names, in order; rows
	// fed to TransformRow must follow this order.
	OriginalNames []string
	// Nodes are the derivation steps in evaluation order.
	Nodes []FeatureNode
	// Output lists the selected column names (original names pass through,
	// derived names refer to Nodes).
	Output []string
	// Task records the prediction task the pipeline was fitted for, so a
	// serving process knows how downstream predictions should be shaped
	// (scalar vs class-probability vector). Round-trips through Save/Load;
	// pipelines saved before the field existed load as the binary task.
	Task Task
}

// NumFeatures returns the width of the transformed representation.
func (p *Pipeline) NumFeatures() int { return len(p.Output) }

// NumDerived returns how many output features are generated (non-original).
func (p *Pipeline) NumDerived() int {
	orig := make(map[string]bool, len(p.OriginalNames))
	for _, n := range p.OriginalNames {
		orig[n] = true
	}
	k := 0
	for _, n := range p.Output {
		if !orig[n] {
			k++
		}
	}
	return k
}

// Transform applies Ψ to a frame whose columns include every original
// column (by name). The result carries the input frame's label slice.
func (p *Pipeline) Transform(f *frame.Frame) (*frame.Frame, error) {
	n := f.NumRows()
	cols := make(map[string][]float64, len(p.OriginalNames)+len(p.Nodes))
	for _, name := range p.OriginalNames {
		c, ok := f.ColByName(name)
		if !ok {
			return nil, fmt.Errorf("core: transform: input frame lacks column %q", name)
		}
		cols[name] = c
	}
	for i := range p.Nodes {
		node := &p.Nodes[i]
		in := make([][]float64, len(node.Inputs))
		for k, dep := range node.Inputs {
			c, ok := cols[dep]
			if !ok {
				return nil, fmt.Errorf("core: transform: node %q needs unknown column %q", node.Name, dep)
			}
			in[k] = c
		}
		cols[node.Name] = node.Applier.Transform(in)
	}
	out := &frame.Frame{Label: f.Label}
	for _, name := range p.Output {
		c, ok := cols[name]
		if !ok {
			return nil, fmt.Errorf("core: transform: unknown output column %q", name)
		}
		if len(c) != n {
			return nil, fmt.Errorf("core: transform: column %q has %d rows, want %d", name, len(c), n)
		}
		out.AddColumn(name, c)
	}
	return out, nil
}

// TransformRow applies Ψ to one raw row (ordered as OriginalNames),
// returning the output feature vector. This is the real-time inference path
// of Section IV-E3: no allocation beyond the result and a scratch map.
func (p *Pipeline) TransformRow(row []float64) ([]float64, error) {
	if len(row) != len(p.OriginalNames) {
		return nil, fmt.Errorf("core: transform row: got %d values, want %d", len(row), len(p.OriginalNames))
	}
	vals := make(map[string]float64, len(p.OriginalNames)+len(p.Nodes))
	for i, name := range p.OriginalNames {
		vals[name] = row[i]
	}
	scratch := make([]float64, 3)
	for i := range p.Nodes {
		node := &p.Nodes[i]
		in := scratch[:len(node.Inputs)]
		for k, dep := range node.Inputs {
			v, ok := vals[dep]
			if !ok {
				return nil, fmt.Errorf("core: transform row: node %q needs unknown column %q", node.Name, dep)
			}
			in[k] = v
		}
		vals[node.Name] = node.Applier.TransformRow(in)
	}
	out := make([]float64, len(p.Output))
	for i, name := range p.Output {
		v, ok := vals[name]
		if !ok {
			return nil, fmt.Errorf("core: transform row: unknown output column %q", name)
		}
		out[i] = v
	}
	return out, nil
}

// TransformBatch applies Ψ to a batch of raw rows (each ordered as
// OriginalNames) in one columnar pass and returns the output feature matrix,
// row-major. Unlike calling TransformRow per row, each operator is applied
// once to whole columns, so the per-node dispatch and map lookups are
// amortised over the batch — this is the serving-side entry point for
// batched /transform and /predict traffic.
func (p *Pipeline) TransformBatch(rows [][]float64) ([][]float64, error) {
	n := len(rows)
	if n == 0 {
		return nil, nil
	}
	// Scatter the row-major input into original columns.
	cols := make(map[string][]float64, len(p.OriginalNames)+len(p.Nodes))
	flat := make([]float64, n*len(p.OriginalNames))
	for j, name := range p.OriginalNames {
		col := flat[j*n : (j+1)*n]
		cols[name] = col
	}
	for i, row := range rows {
		if len(row) != len(p.OriginalNames) {
			return nil, fmt.Errorf("core: transform batch: row %d has %d values, want %d",
				i, len(row), len(p.OriginalNames))
		}
		for j, name := range p.OriginalNames {
			cols[name][i] = row[j]
		}
	}
	for i := range p.Nodes {
		node := &p.Nodes[i]
		in := make([][]float64, len(node.Inputs))
		for k, dep := range node.Inputs {
			c, ok := cols[dep]
			if !ok {
				return nil, fmt.Errorf("core: transform batch: node %q needs unknown column %q", node.Name, dep)
			}
			in[k] = c
		}
		cols[node.Name] = node.Applier.Transform(in)
	}
	// Gather the selected outputs back into row-major form.
	outFlat := make([]float64, n*len(p.Output))
	out := make([][]float64, n)
	for i := range out {
		out[i] = outFlat[i*len(p.Output) : (i+1)*len(p.Output)]
	}
	for j, name := range p.Output {
		c, ok := cols[name]
		if !ok {
			return nil, fmt.Errorf("core: transform batch: unknown output column %q", name)
		}
		if len(c) != n {
			return nil, fmt.Errorf("core: transform batch: column %q has %d rows, want %d", name, len(c), n)
		}
		for i := 0; i < n; i++ {
			out[i][j] = c[i]
		}
	}
	return out, nil
}

// Formulas returns a human-readable formula per output feature, satisfying
// the interpretability requirement of Section II: every generated feature is
// an explicit expression over original columns.
func (p *Pipeline) Formulas() []string {
	out := make([]string, len(p.Output))
	copy(out, p.Output) // derived names are already formulas
	return out
}

// prune drops nodes whose outputs are unreachable from Output, keeping the
// pipeline minimal for inference.
func (p *Pipeline) prune() {
	needed := make(map[string]bool, len(p.Output))
	for _, name := range p.Output {
		needed[name] = true
	}
	// Walk nodes backwards marking dependencies.
	keep := make([]bool, len(p.Nodes))
	for i := len(p.Nodes) - 1; i >= 0; i-- {
		if needed[p.Nodes[i].Name] {
			keep[i] = true
			for _, dep := range p.Nodes[i].Inputs {
				needed[dep] = true
			}
		}
	}
	pruned := p.Nodes[:0]
	for i := range p.Nodes {
		if keep[i] {
			pruned = append(pruned, p.Nodes[i])
		}
	}
	p.Nodes = pruned
}

// sanitize replaces NaN/Inf outputs with 0 in place; classifiers downstream
// assume finite matrices. Division and reciprocal operators produce NaN on
// zero denominators by design.
func sanitize(col []float64) {
	for i, v := range col {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			col[i] = 0
		}
	}
}
