package core

import (
	"runtime"
	"testing"
)

// TestFitDeterministicAcrossWorkerCounts is the contract the parallel rebuild
// must keep: Fit selects the same features, with the same formulas in the
// same order, no matter how many workers the shared pool uses — including the
// fully serial path. CI runs this under -race.
func TestFitDeterministicAcrossWorkerCounts(t *testing.T) {
	ds := testDataset(t)

	type outcome struct {
		output   []string
		formulas []string
		selected int
	}
	run := func(parallel bool, workers int) outcome {
		cfg := DefaultConfig()
		cfg.Parallel = parallel
		cfg.Workers = workers
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, report, err := eng.Fit(ds.Train)
		if err != nil {
			t.Fatal(err)
		}
		sel := 0
		if n := len(report.Iterations); n > 0 {
			sel = report.Iterations[n-1].Selected
		}
		return outcome{output: p.Output, formulas: p.Formulas(), selected: sel}
	}

	ref := run(false, 0) // fully serial reference
	cases := []struct {
		name    string
		workers int
	}{
		{"workers-1", 1},
		{"workers-2", 2},
		{"workers-numcpu", runtime.NumCPU()},
	}
	for _, tc := range cases {
		got := run(true, tc.workers)
		if got.selected != ref.selected {
			t.Errorf("%s: selected %d features, serial selected %d", tc.name, got.selected, ref.selected)
		}
		if len(got.output) != len(ref.output) {
			t.Fatalf("%s: output width %d, serial %d", tc.name, len(got.output), len(ref.output))
		}
		for i := range ref.output {
			if got.output[i] != ref.output[i] {
				t.Errorf("%s: output[%d] = %q, serial %q", tc.name, i, got.output[i], ref.output[i])
			}
			if got.formulas[i] != ref.formulas[i] {
				t.Errorf("%s: formula[%d] = %q, serial %q", tc.name, i, got.formulas[i], ref.formulas[i])
			}
		}
	}
}
