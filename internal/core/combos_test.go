package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gbdt"
	"repro/internal/parallel"
)

func trainTinyModel(t *testing.T) *gbdt.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	n := 1500
	cols := make([][]float64, 5)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = rng.NormFloat64()
		}
	}
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		if cols[0][i]*cols[1][i] > 0 { // interaction between 0 and 1
			labels[i] = 1
		}
	}
	cfg := gbdt.DefaultConfig()
	cfg.NumTrees = 15
	model, err := gbdt.Train(cols, labels, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestMineCombosArities(t *testing.T) {
	model := trainTinyModel(t)
	pairsOnly := mineCombos(model, []int{2})
	for _, c := range pairsOnly {
		if len(c.Features) != 2 {
			t.Fatalf("arity-2 mining produced %d-feature combo", len(c.Features))
		}
	}
	singles := mineCombos(model, []int{1})
	for _, c := range singles {
		if len(c.Features) != 1 {
			t.Fatalf("arity-1 mining produced %d-feature combo", len(c.Features))
		}
	}
	mixed := mineCombos(model, []int{1, 2, 3})
	has := map[int]bool{}
	for _, c := range mixed {
		has[len(c.Features)] = true
	}
	if !has[1] || !has[2] {
		t.Errorf("mixed mining missing arities: %v", has)
	}
}

func TestMineCombosDeduplicates(t *testing.T) {
	model := trainTinyModel(t)
	combos := mineCombos(model, []int{2})
	seen := map[comboKey]bool{}
	for _, c := range combos {
		k := keyOf(c.Features)
		if seen[k] {
			t.Fatalf("duplicate combo %v", c.Features)
		}
		seen[k] = true
		// Features sorted, values sorted ascending.
		for i := 1; i < len(c.Features); i++ {
			if c.Features[i] <= c.Features[i-1] {
				t.Fatalf("combo features not sorted: %v", c.Features)
			}
		}
		for _, vs := range c.Values {
			for i := 1; i < len(vs); i++ {
				if vs[i] <= vs[i-1] {
					t.Fatalf("combo values not sorted: %v", vs)
				}
			}
		}
	}
}

func TestMergeSorted(t *testing.T) {
	cases := []struct {
		a, b, want []float64
	}{
		{nil, nil, nil},
		{[]float64{1, 3}, nil, []float64{1, 3}},
		{nil, []float64{2}, []float64{2}},
		{[]float64{1, 3}, []float64{2, 3, 4}, []float64{1, 2, 3, 4}},
		{[]float64{1, 1, 2}, []float64{1}, []float64{1, 2}},
	}
	for _, c := range cases {
		got := mergeSorted(c.a, c.b)
		if len(got) != len(c.want) {
			t.Fatalf("mergeSorted(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("mergeSorted(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

func TestThinValuesRespectsCap(t *testing.T) {
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i)
	}
	values := [][]float64{big, append([]float64(nil), big...)}
	thinned := thinValues(values)
	cells := 1
	for _, vs := range thinned {
		cells *= len(vs) + 1
	}
	if cells > maxPartitionCells {
		t.Errorf("thinned partition still has %d cells (cap %d)", cells, maxPartitionCells)
	}
	// Thinned sets keep extremes-ish coverage: first element preserved.
	if thinned[0][0] != 0 {
		t.Errorf("thinning dropped the lowest cut: %v", thinned[0][:3])
	}
}

func TestThinValuesNoopWhenSmall(t *testing.T) {
	values := [][]float64{{1, 2}, {3}}
	thinned := thinValues(values)
	if len(thinned[0]) != 2 || len(thinned[1]) != 1 {
		t.Errorf("small value sets were thinned: %v", thinned)
	}
}

func TestScoreCombosXORPairWins(t *testing.T) {
	// The XOR pair (0,1) must outscore pairs involving noise features.
	model := trainTinyModel(t)
	rng := rand.New(rand.NewSource(72))
	n := 1500
	cols := make([][]float64, 5)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = rng.NormFloat64()
		}
	}
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		if cols[0][i]*cols[1][i] > 0 {
			labels[i] = 1
		}
	}
	combos := mineCombos(model, []int{2})
	_ = scoreCombos(context.Background(), combos, cols, labels, BinaryTask(), parallel.Get(1))
	combos = topCombos(combos, 0)
	if len(combos) == 0 {
		t.Fatal("no combos")
	}
	best := combos[0]
	if !(best.Features[0] == 0 && best.Features[1] == 1) {
		t.Errorf("top combo = %v (gain ratio %v), want [0 1]", best.Features, best.GainRatio)
	}
}

func TestScoreCombosParallelMatchesSerial(t *testing.T) {
	model := trainTinyModel(t)
	rng := rand.New(rand.NewSource(73))
	n := 800
	cols := make([][]float64, 5)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = rng.NormFloat64()
		}
	}
	labels := make([]float64, n)
	for i := range labels {
		labels[i] = float64(rng.Intn(2))
	}
	a := mineCombos(model, []int{1, 2})
	b := mineCombos(model, []int{1, 2})
	_ = scoreCombos(context.Background(), a, cols, labels, BinaryTask(), parallel.Get(1))
	_ = scoreCombos(context.Background(), b, cols, labels, BinaryTask(), parallel.Get(4))
	for i := range a {
		if a[i].GainRatio != b[i].GainRatio {
			t.Fatalf("combo %v: serial %v != parallel %v", a[i].Features, a[i].GainRatio, b[i].GainRatio)
		}
	}
}

func TestTopCombosOrdering(t *testing.T) {
	combos := []Combo{
		{Features: []int{3}, GainRatio: 0.1},
		{Features: []int{1}, GainRatio: 0.5},
		{Features: []int{2}, GainRatio: 0.5},
		{Features: []int{0}, GainRatio: 0.9},
	}
	top := topCombos(combos, 3)
	if len(top) != 3 {
		t.Fatalf("kept %d, want 3", len(top))
	}
	if top[0].GainRatio != 0.9 {
		t.Errorf("top combo gain = %v", top[0].GainRatio)
	}
	// Ties broken by feature index for determinism.
	if top[1].Features[0] != 1 || top[2].Features[0] != 2 {
		t.Errorf("tie-break wrong: %v then %v", top[1].Features, top[2].Features)
	}
}

func TestStandardizeCol(t *testing.T) {
	out := standardizeCol([]float64{1, 2, 3})
	if out == nil {
		t.Fatal("nil for a varying column")
	}
	sum := out[0] + out[1] + out[2]
	if sum > 1e-9 || sum < -1e-9 {
		t.Errorf("standardized sum = %v, want 0", sum)
	}
	if standardizeCol([]float64{5, 5, 5}) != nil {
		t.Error("constant column should standardize to nil")
	}
	// NaNs map to 0 (the mean after standardisation).
	withNaN := standardizeCol([]float64{1, math.NaN(), 3})
	if withNaN == nil || withNaN[1] != 0 {
		t.Errorf("NaN handling = %v, want middle element 0", withNaN)
	}
}
