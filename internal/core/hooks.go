package core

import (
	"sort"

	"repro/internal/gbdt"
	"repro/internal/operators"
	"repro/internal/stats"
)

// This file is the exported surface the sharded fit engine (internal/shard)
// shares with the in-memory fit path. Every hook wraps or re-exposes the
// exact logic Fit uses, so the two paths cannot drift: a sharded fit that
// feeds these hooks the same intermediate statistics reaches the same
// decisions.

// MineCombos enumerates feature combinations from a miner model's
// root-to-leaf paths (Algorithm 2's input), exactly as Fit does.
func MineCombos(model *gbdt.Model, arities []int) []Combo {
	return mineCombos(model, arities)
}

// SortCombos orders combinations by gain ratio and keeps the top gamma —
// Algorithm 2's output, exactly as Fit applies it.
func SortCombos(combos []Combo, gamma int) []Combo {
	return topCombos(combos, gamma)
}

// IVFilter applies Algorithm 3's threshold with the top-minKeep fallback,
// exactly as Fit's streaming filter resolves the surviving candidate set.
func IVFilter(ivs []float64, alpha float64, minKeep int) []int {
	return ivFilter(ivs, alpha, minKeep)
}

// OrderByGain orders candidate indices by ranker gain importance
// (Section IV-C3): gain[i] belongs to candidates[i]; ties break by IV then
// candidate index, exactly as Fit's ranking stage does.
func OrderByGain(gain []float64, ivs []float64, candidates []int) []int {
	order := make([]int, len(candidates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := gain[order[a]], gain[order[b]]
		if ga != gb {
			return ga > gb
		}
		iva, ivb := ivs[candidates[order[a]]], ivs[candidates[order[b]]]
		if iva != ivb {
			return iva > ivb
		}
		return candidates[order[a]] < candidates[order[b]]
	})
	out := make([]int, len(order))
	for i, o := range order {
		out[i] = candidates[o]
	}
	return out
}

// DistinctArities lists the distinct operator arities, in first-seen order.
func DistinctArities(ops []operators.Operator) []int {
	return distinctArities(ops)
}

// ExhaustiveCandidateCount is |S| of Eq. 3 restricted to binary operators:
// the search-space figure Fit reports per round.
func ExhaustiveCandidateCount(m int, ops []operators.Operator) int {
	return exhaustiveBinaryCount(m, ops)
}

// Sanitize replaces NaN/Inf with 0 in place — the post-generation clamp Fit
// applies to every generated candidate column.
func Sanitize(col []float64) { sanitize(col) }

// Prune drops nodes unreachable from the pipeline's outputs, exactly as Fit
// does before returning Ψ. Callers assembling pipelines from externally
// selected features (the sharded fit engine) finish through here.
func (p *Pipeline) Prune() { p.prune() }

// ComboCells maps rows to the partition cells of one combination, using the
// same split-value thinning and mixed-radix cell ids as Fit's gain-ratio
// scoring. A sharded scorer accumulates per-cell label counts with CellOf
// and folds them through stats.GainRatioFromCounts.
type ComboCells struct {
	feats  []int
	values [][]float64
	radix  []int
	cells  int
	ix     []stats.CutIndexer // per-feature bucket index over values[i]
}

// NewComboCells prepares the cell mapping for one combination. The prepared
// mapping is read-only, so concurrent CellOf calls are safe.
func NewComboCells(c *Combo) *ComboCells {
	values := thinValues(c.Values)
	radix := make([]int, len(values))
	cells := 1
	for i, vs := range values {
		radix[i] = len(vs) + 1
		cells *= radix[i]
	}
	cc := &ComboCells{feats: c.Features, values: values, radix: radix, cells: cells}
	cc.ix = make([]stats.CutIndexer, len(values))
	for i, vs := range values {
		cc.ix[i].Reset(vs)
	}
	return cc
}

// NumCells returns the partition size (1 for a degenerate combination).
func (cc *ComboCells) NumCells() int { return cc.cells }

// Features returns the combination's feature indices (not a copy).
func (cc *ComboCells) Features() []int { return cc.feats }

// CellOf returns the mixed-radix cell id for one row's combo-feature values
// (vals[i] is the value of feature cc.Features()[i]). The bucket index
// reproduces the binary search exactly; NaN sorts below every split value
// (index 0), matching the binary search's comparison behaviour.
func (cc *ComboCells) CellOf(vals []float64) int {
	id := 0
	for i := range cc.feats {
		v := vals[i]
		j := 0
		if v == v { // non-NaN
			j = cc.ix[i].Find(v)
		}
		id = id*cc.radix[i] + j
	}
	return id
}
