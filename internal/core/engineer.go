package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/frame"
	"repro/internal/gbdt"
	"repro/internal/metrics"
	"repro/internal/operators"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Config configures the SAFE engineer. Zero values take the defaults the
// paper uses in Section V; the only hyper-parameters are complexity knobs
// (Section IV-E1).
type Config struct {
	// Task selects the prediction task the fit engineers features for:
	// binary classification (the default and the paper's setting), K-class
	// classification, or regression. It drives the miner/ranker objectives
	// and the selection criterion; see Task.
	Task Task

	// Operators names the generation operators (keys of the Registry).
	// Default: the paper's experimental set {add, sub, mul, div}.
	Operators []string
	// Registry resolves operator names; defaults to the built-in catalogue.
	Registry *operators.Registry

	// Gamma is γ of Algorithm 2: how many top combinations are kept for
	// generation. Default: 2 × number of original features.
	Gamma int
	// IVThreshold is α of Algorithm 3 (default 0.1, Table I).
	IVThreshold float64
	// IVBins is β of Algorithm 3 (default 10 equal-frequency bins).
	IVBins int
	// IVEqualWidth switches IV binning to equal-width (ablation; default
	// equal-frequency as in the paper).
	IVEqualWidth bool
	// PearsonThreshold is θ of Algorithm 4 (default 0.8, Table II).
	PearsonThreshold float64
	// MaxFeatures caps the final selected feature count per iteration.
	// Default: 2 × number of original features (the paper's experiment
	// budget "2M").
	MaxFeatures int

	// Iterations is nIter of Algorithm 1 (default 1, matching Section V-A).
	Iterations int
	// TimeBudget is tIter: Fit stops starting new iterations once exceeded.
	// Zero means no time limit.
	TimeBudget time.Duration

	// Miner configures the combination-mining XGBoost (Section IV-B1).
	// NumTrees/MaxDepth directly control the search space (Eq. 13). The
	// Objective and NumClass fields are owned by Task: normalisation
	// replaces any caller-set values with the task's objective.
	Miner gbdt.Config
	// Ranker configures the importance-ranking XGBoost (Section IV-C3).
	// Objective/NumClass are owned by Task, as for Miner.
	Ranker gbdt.Config

	// MinKeepIV is the robustness floor for the IV filter: when fewer
	// features pass α, the top-MinKeepIV by IV are kept instead.
	MinKeepIV int
	// Patience enables validation-based early stopping in
	// FitWithValidation: after Patience consecutive rounds without at least
	// MinDelta AUC improvement on the validation set, iteration stops and
	// the best round's selection is kept. 0 disables early stopping.
	Patience int
	// MinDelta is the minimum validation-AUC improvement that resets the
	// patience counter.
	MinDelta float64
	// Events, when non-nil, receives the fit's structured progress stream:
	// iteration and stage boundaries with candidate/survivor counts, rows
	// processed, and wall times. Both fit engines emit the same protocol;
	// see FitEvent for the delivery contract. The callback runs on the
	// fitting goroutine and must return quickly.
	Events EventFunc
	// Parallel enables worker-pool parallelism in mining, generation, IV
	// and Pearson computations.
	Parallel bool
	// Workers bounds the shared worker pool when Parallel is set; <= 0
	// selects GOMAXPROCS. Fit results are identical for any worker count.
	Workers int
	// Seed drives all stochastic components.
	Seed int64
}

// DefaultConfig returns the paper's experimental configuration.
func DefaultConfig() Config {
	miner := gbdt.DefaultConfig()
	miner.NumTrees = 20
	miner.MaxDepth = 4
	ranker := gbdt.DefaultConfig()
	ranker.NumTrees = 20
	ranker.MaxDepth = 4
	return Config{
		Operators:        operators.DefaultExperimentOperators(),
		Gamma:            0, // resolved to 2M at fit time
		IVThreshold:      stats.DefaultIVCutoff,
		IVBins:           10,
		PearsonThreshold: stats.DefaultPearsonCutoff,
		MaxFeatures:      0, // resolved to 2M at fit time
		Iterations:       1,
		Miner:            miner,
		Ranker:           ranker,
		MinKeepIV:        8,
		Parallel:         true,
	}
}

// IterationReport records the sizes at each stage of one SAFE iteration.
type IterationReport struct {
	Round          int
	CombosMined    int // unique combinations from paths
	CombosKept     int // after gain-ratio top-γ
	Generated      int // new features generated (X̃)
	Candidates     int // X̂ = base ∪ generated
	AfterIV        int // X̂A
	AfterPearson   int // X̂B
	Selected       int // X̂C carried to the next round
	Elapsed        time.Duration
	BestGainRatio  float64
	SearchSpaceAll int // exhaustive candidate count for this round (binary ops)
	// Per-stage wall-clock timings for the round, populated from the same
	// instrumentation that feeds the FitEvent stream: combination mining,
	// gain-ratio scoring, feature generation (operator application),
	// Information-Value scoring+filtering, Pearson redundancy removal, and
	// gain ranking. Their sum is slightly below Elapsed (bookkeeping
	// between stages is not attributed).
	MineTime     time.Duration
	ScoreTime    time.Duration
	GenerateTime time.Duration
	IVTime       time.Duration
	PearsonTime  time.Duration
	RankTime     time.Duration
	// ValidAUC is the validation score of the round's selection, only set by
	// FitWithValidation: AUC for the binary task, exact-match accuracy for
	// multiclass, negative RMSE for regression (higher is better for all).
	ValidAUC float64
}

// Report summarises a Fit run.
type Report struct {
	Iterations []IterationReport
	Total      time.Duration
}

// Engineer runs SAFE. Construct with New, then call Fit.
type Engineer struct {
	cfg  Config
	pool *parallel.Pool
}

// New validates the configuration and returns an Engineer.
func New(cfg Config) (*Engineer, error) {
	cfg, err := NormalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	pool := parallel.Get(1)
	if cfg.Parallel {
		pool = parallel.Get(cfg.Workers)
	}
	return &Engineer{cfg: cfg, pool: pool}, nil
}

// NormalizeConfig applies New's defaulting and validation and returns the
// effective configuration — including the derived miner/ranker seeds and
// parallelism settings. The sharded fit engine normalises through here so
// both fit paths run from identical effective configurations.
func NormalizeConfig(cfg Config) (Config, error) {
	if err := cfg.Task.Validate(); err != nil {
		return Config{}, err
	}
	if cfg.Registry == nil {
		cfg.Registry = operators.NewRegistry()
	}
	if len(cfg.Operators) == 0 {
		cfg.Operators = operators.DefaultExperimentOperators()
	}
	if cfg.Task.Kind != TaskBinary {
		if cfg.IVEqualWidth {
			return Config{}, fmt.Errorf("core: IVEqualWidth is a binary-IV ablation; not supported for the %s task", cfg.Task)
		}
		for _, op := range cfg.Operators {
			if op == "bin_chimerge" {
				return Config{}, fmt.Errorf("core: operator %q discretises against binary labels; not supported for the %s task", op, cfg.Task)
			}
		}
	}
	if cfg.IVBins <= 1 {
		cfg.IVBins = 10
	}
	if cfg.IVThreshold < 0 {
		return Config{}, errors.New("core: IVThreshold must be >= 0")
	}
	if cfg.PearsonThreshold <= 0 || cfg.PearsonThreshold > 1 {
		return Config{}, fmt.Errorf("core: PearsonThreshold must be in (0,1], got %g", cfg.PearsonThreshold)
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	if cfg.MinKeepIV <= 0 {
		cfg.MinKeepIV = 8
	}
	if cfg.Miner.NumTrees == 0 {
		cfg.Miner = gbdt.DefaultConfig()
		cfg.Miner.NumTrees = 20
		cfg.Miner.MaxDepth = 4
	}
	if cfg.Ranker.NumTrees == 0 {
		cfg.Ranker = gbdt.DefaultConfig()
		cfg.Ranker.NumTrees = 20
		cfg.Ranker.MaxDepth = 4
	}
	cfg.Task.applyObjective(&cfg.Miner)
	cfg.Task.applyObjective(&cfg.Ranker)
	cfg.Miner.Parallel = cfg.Parallel
	cfg.Ranker.Parallel = cfg.Parallel
	cfg.Miner.Workers = cfg.Workers
	cfg.Ranker.Workers = cfg.Workers
	cfg.Miner.Seed = cfg.Seed
	cfg.Ranker.Seed = cfg.Seed + 1
	// Validate that every operator resolves.
	if _, err := cfg.Registry.GetAll(cfg.Operators); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// liveFeature is one feature of the current working set X_i: its training
// (and optionally validation) values plus the pipeline node that derives it
// (nil for originals). pooled marks columns owned by the fit arena, which
// may be recycled once the feature provably leaves the working set.
type liveFeature struct {
	name   string
	train  []float64
	valid  []float64 // nil when fitting without a validation frame
	node   *FeatureNode
	iv     float64
	pooled bool
}

// Fit learns the feature generation function Ψ from a labelled training
// frame (Algorithm 1).
func (e *Engineer) Fit(train *frame.Frame) (*Pipeline, *Report, error) {
	return e.fit(context.Background(), train, nil)
}

// FitContext is Fit with cooperative cancellation: ctx is checked at every
// stage boundary, between generated candidates, per Pearson scan, and per
// boosting round inside the miner/ranker, so a cancelled or expired context
// aborts the fit promptly with ctx.Err(). The shared worker pool drains its
// in-flight chunks and stays reusable — no goroutines are leaked.
func (e *Engineer) FitContext(ctx context.Context, train *frame.Frame) (*Pipeline, *Report, error) {
	return e.fit(ctx, train, nil)
}

// FitWithValidation learns Ψ using a validation frame for per-round AUC
// tracking and (when Config.Patience > 0) early stopping: iteration halts
// after Patience rounds without MinDelta improvement, keeping the best
// round's selection — the "performance keeps unchanged after some rounds"
// behaviour of Fig. 4 without paying for the extra rounds.
func (e *Engineer) FitWithValidation(train, valid *frame.Frame) (*Pipeline, *Report, error) {
	return e.FitWithValidationContext(context.Background(), train, valid)
}

// FitWithValidationContext is FitWithValidation with the cancellation
// contract of FitContext.
func (e *Engineer) FitWithValidationContext(ctx context.Context, train, valid *frame.Frame) (*Pipeline, *Report, error) {
	if valid == nil {
		return nil, nil, errors.New("core: FitWithValidation requires a validation frame")
	}
	if err := valid.Validate(); err != nil {
		return nil, nil, err
	}
	if valid.Label == nil {
		return nil, nil, errors.New("core: validation frame has no label")
	}
	return e.fit(ctx, train, valid)
}

func (e *Engineer) fit(ctx context.Context, train, valid *frame.Frame) (*Pipeline, *Report, error) {
	if err := train.Validate(); err != nil {
		return nil, nil, err
	}
	if train.Label == nil {
		return nil, nil, errors.New("core: training frame has no label")
	}
	if train.NumCols() == 0 {
		return nil, nil, errors.New("core: training frame has no features")
	}
	cfg := e.cfg
	if err := cfg.Task.ValidateLabels(train.Label); err != nil {
		return nil, nil, err
	}
	if valid != nil {
		if err := cfg.Task.ValidateLabels(valid.Label); err != nil {
			return nil, nil, err
		}
	}
	m := train.NumCols()
	budget := cfg.MaxFeatures
	if budget <= 0 {
		budget = 2 * m
	}
	gamma := cfg.Gamma
	if gamma <= 0 {
		gamma = 2 * m
	}

	ops, err := cfg.Registry.GetAll(cfg.Operators)
	if err != nil {
		return nil, nil, err
	}
	arities := distinctArities(ops)

	labels := train.Label
	// Working set: start from the original columns.
	live := make([]*liveFeature, 0, m+budget)
	for j := 0; j < m; j++ {
		lf := &liveFeature{
			name:  train.Columns[j].Name,
			train: train.Columns[j].Values,
		}
		if valid != nil {
			vcol, ok := valid.ColByName(lf.name)
			if !ok {
				return nil, nil, fmt.Errorf("core: validation frame lacks column %q", lf.name)
			}
			lf.valid = vcol
		}
		live = append(live, lf)
	}

	report := &Report{}
	start := time.Now()
	var allNodes []FeatureNode
	// Validation scores are only comparable within a task; regression's
	// (negative RMSE) is always <= 0, so the best-so-far must start at -Inf
	// or no round could ever be accepted.
	bestAUC := math.Inf(-1)
	bestLive := live
	patienceLeft := cfg.Patience
	arena := operators.NewArena(train.NumRows())
	pool := e.pool
	rows := int64(train.NumRows())
	var rowsProcessed int64

	cfg.Emit(FitEvent{Kind: EventFitStart, Candidates: m})

	for round := 0; round < cfg.Iterations; round++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if cfg.TimeBudget > 0 && time.Since(start) > cfg.TimeBudget {
			break
		}
		iterStart := time.Now()
		ir := IterationReport{Round: round + 1}
		sc := NewStageClock(&cfg, &ir, &rowsProcessed)
		cfg.Emit(FitEvent{Kind: EventIterationStart, Round: ir.Round, Candidates: len(live), Rows: rowsProcessed})

		cols := make([][]float64, len(live))
		names := make([]string, len(live))
		for i, lf := range live {
			cols[i] = lf.train
			names[i] = lf.name
		}

		// (1) Mine combination relations (Algorithm 1 lines 3-4).
		sc.Begin(StageMine, len(live))
		minerCfg := cfg.Miner
		minerCfg.Seed = cfg.Seed + int64(round)*131
		model, err := gbdt.TrainCtx(ctx, cols, labels, names, minerCfg)
		if err != nil {
			return nil, nil, WrapUnlessCancelled(ctx, err, "core: miner")
		}
		combos := mineCombos(model, arities)
		ir.CombosMined = len(combos)
		ir.SearchSpaceAll = exhaustiveBinaryCount(len(live), ops)
		sc.AddRows(rows)
		sc.End(len(combos))

		// (2) Sort and filter combinations by gain ratio (Algorithm 2).
		sc.Begin(StageScore, len(combos))
		if err := scoreCombos(ctx, combos, cols, labels, cfg.Task, pool); err != nil {
			return nil, nil, err
		}
		combos = topCombos(combos, gamma)
		ir.CombosKept = len(combos)
		if len(combos) > 0 {
			ir.BestGainRatio = combos[0].GainRatio
		}
		sc.AddRows(rows)
		sc.End(len(combos))

		// (3)-(5) Generate features and filter uninformative ones
		// (Algorithm 1 lines 6-7, Algorithm 3), streamed: candidates are
		// IV-scored chunk by chunk and rejected columns recycle through the
		// arena instead of materialising the full candidate set X̂.
		sc.Begin(StageGenerate, len(combos))
		stream := newCandidateStream(ctx, &cfg, pool, arena, live, labels)
		stream.addBase()
		if err := e.enumerate(stream, combos, ops); err != nil {
			return nil, nil, err
		}
		entries := stream.finish()
		ir.Generated = stream.generated
		ir.Candidates = len(entries)
		sc.AddRows(rows)
		sc.End(len(entries))
		// The stream interleaves IV scoring with generation; attribute its
		// criterion time to the IV stage so the report's split is honest.
		ir.GenerateTime -= stream.ivTime
		ir.IVTime += stream.ivTime

		sc.Begin(StageIVFilter, len(entries))
		keptA := stream.keptAfterIV(entries, cfg.MinKeepIV)
		ir.AfterIV = len(keptA)
		sc.End(len(keptA))

		candCols := make([][]float64, len(entries))
		ivs := make([]float64, len(entries))
		for i, en := range entries {
			candCols[i] = en.lf.train // nil for recycled IV rejects, which no later stage touches
			ivs[i] = en.iv
		}

		// (6) Remove redundant features (Algorithm 4).
		sc.Begin(StagePearson, len(keptA))
		keptB, err := pearsonDedup(ctx, candCols, ivs, keptA, cfg.PearsonThreshold, pool)
		if err != nil {
			return nil, nil, err
		}
		ir.AfterPearson = len(keptB)
		sc.AddRows(rows)
		sc.End(len(keptB))

		// (7) Rank by XGBoost gain, keep top budget (line 10).
		sc.Begin(StageRank, len(keptB))
		rankerCfg := cfg.Ranker
		rankerCfg.Seed = cfg.Seed + 7919 + int64(round)*131
		ranked, err := rankByGain(ctx, candCols, labels, ivs, keptB, rankerCfg)
		if err != nil {
			return nil, nil, WrapUnlessCancelled(ctx, err, "core: ranker")
		}
		if len(ranked) > budget {
			ranked = ranked[:budget]
		}
		ir.Selected = len(ranked)
		sc.AddRows(rows)
		sc.End(len(ranked))

		// Carry the selection to the next round and record new nodes.
		next := make([]*liveFeature, 0, len(ranked))
		selected := make(map[*liveFeature]bool, len(ranked))
		for _, idx := range ranked {
			lf := entries[idx].lf
			next = append(next, lf)
			selected[lf] = true
		}
		for _, en := range entries {
			if en.spec.op != nil {
				allNodes = append(allNodes, *en.lf.node)
			}
		}
		// Selected generated features need validation columns (computed
		// lazily here instead of for every candidate at generation time).
		if valid != nil {
			for _, en := range entries {
				if en.spec.op == nil || !selected[en.lf] {
					continue
				}
				vin := make([][]float64, len(en.spec.feats))
				for i, f := range en.spec.feats {
					vin[i] = live[f].valid
				}
				vvals := en.applier.Transform(vin)
				sanitize(vvals)
				en.lf.valid = vvals
			}
		}
		// Recycle arena columns that provably left the working set: rejects
		// generated this round always; prior-round features only when no
		// validation snapshot (bestLive) may still reference them.
		for _, en := range entries {
			lf := en.lf
			if selected[lf] || !lf.pooled || lf.train == nil {
				continue
			}
			if en.spec.op != nil || valid == nil {
				arena.Put(lf.train)
				lf.train = nil
			}
		}
		live = next

		// Validation tracking and early stopping.
		if valid != nil {
			auc, verr := e.validationScore(ctx, live, labels, valid.Label, cfg, round)
			if verr != nil {
				return nil, nil, verr
			}
			ir.ValidAUC = auc
			if auc > bestAUC+cfg.MinDelta {
				bestAUC = auc
				bestLive = live
				patienceLeft = cfg.Patience
			} else if cfg.Patience > 0 {
				patienceLeft--
			}
		} else {
			bestLive = live
		}

		ir.Elapsed = time.Since(iterStart)
		report.Iterations = append(report.Iterations, ir)
		cfg.Emit(FitEvent{
			Kind: EventIterationEnd, Round: ir.Round, Candidates: ir.Candidates,
			Survivors: ir.Selected, Rows: rowsProcessed, Elapsed: ir.Elapsed,
		})

		if valid != nil && cfg.Patience > 0 && patienceLeft <= 0 {
			break
		}
	}
	if valid == nil {
		bestLive = live
	}

	// Assemble Ψ from the final (or best-validated) selection
	// (Algorithm 1 line 14).
	p := &Pipeline{
		OriginalNames: train.Names(),
		Nodes:         allNodes,
		Task:          cfg.Task,
	}
	for _, lf := range bestLive {
		p.Output = append(p.Output, lf.name)
	}
	p.prune()
	report.Total = time.Since(start)
	cfg.Emit(FitEvent{
		Kind: EventFitEnd, Survivors: len(p.Output),
		Rows: rowsProcessed, Elapsed: report.Total,
	})
	return p, report, nil
}

// WrapUnlessCancelled wraps an engine error with a "<prefix>: " unless the
// context was cancelled, in which case the bare ctx.Err() is returned:
// callers and tests match cancelled fits with errors.Is against
// context.Canceled/DeadlineExceeded, and the cancellation must not be
// buried under stage-specific wrapping. Shared by both fit engines.
func WrapUnlessCancelled(ctx context.Context, err error, prefix string) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("%s: %w", prefix, err)
}

// enumerate applies the operator set to the selected combinations
// (Section IV-B3), feeding each application into the candidate stream.
// Non-commutative binary operators are applied in both argument orders
// (the paper counts such orders as distinct operators).
func (e *Engineer) enumerate(stream *candidateStream, combos []Combo, ops []operators.Operator) error {
	for _, c := range combos {
		for _, op := range ops {
			if int(op.Arity()) != len(c.Features) {
				continue
			}
			if err := stream.generate(op, c.Features); err != nil {
				return err
			}
			if op.Arity() == operators.Binary && !operators.Commutative(op.Name()) {
				rev := []int{c.Features[1], c.Features[0]}
				if err := stream.generate(op, rev); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// validationScore trains a small gradient-boosted evaluator on the selected
// training columns and scores the selected validation columns with the
// task's validation metric: AUC for binary, exact-match accuracy for
// multiclass, negative RMSE for regression (all higher-is-better, so the
// early-stopping comparison is task-agnostic).
func (e *Engineer) validationScore(ctx context.Context, live []*liveFeature, trainLabels, validLabels []float64, cfg Config, round int) (float64, error) {
	cols := make([][]float64, len(live))
	vcols := make([][]float64, len(live))
	for i, lf := range live {
		cols[i] = lf.train
		vcols[i] = lf.valid
	}
	evalCfg := cfg.Ranker
	evalCfg.Seed = cfg.Seed + 40009 + int64(round)
	model, err := gbdt.TrainCtx(ctx, cols, trainLabels, nil, evalCfg)
	if err != nil {
		return 0, WrapUnlessCancelled(ctx, err, "core: validation evaluator")
	}
	preds := model.Predict(vcols)
	switch cfg.Task.Kind {
	case TaskMulticlass:
		return metrics.ClassAccuracy(preds, validLabels), nil
	case TaskRegression:
		return -metrics.RMSE(preds, validLabels), nil
	default:
		return metrics.AUC(preds, validLabels), nil
	}
}

func distinctArities(ops []operators.Operator) []int {
	seen := make(map[int]bool)
	var out []int
	for _, op := range ops {
		a := int(op.Arity())
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// exhaustiveBinaryCount is |S| of Eq. 3 restricted to binary operators with
// 4 operators (the experimental set): the size of the search space an
// exhaustive generate-then-select method would face this round. Used by the
// search-space experiment.
func exhaustiveBinaryCount(m int, ops []operators.Operator) int {
	nBinary := 0
	for _, op := range ops {
		if op.Arity() == operators.Binary {
			nBinary++
			if !operators.Commutative(op.Name()) {
				nBinary++
			}
		}
	}
	return m * (m - 1) / 2 * nBinary
}
