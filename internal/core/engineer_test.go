package core

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/frame"
	"repro/internal/gbdt"
	"repro/internal/metrics"
	"repro/internal/parallel"
)

// testDataset returns a mid-size dataset with planted interactions.
func testDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "core-test", Train: 4000, Valid: 0, Test: 1200, Dim: 12,
		Informative: 2, Interactions: 4, SignalScale: 2.5, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func evalGBDT(t *testing.T, train, test *frame.Frame) float64 {
	t.Helper()
	cfg := gbdt.DefaultConfig()
	cfg.NumTrees = 40
	cols := make([][]float64, train.NumCols())
	for j := range cols {
		cols[j] = train.Columns[j].Values
	}
	model, err := gbdt.Train(cols, train.Label, train.Names(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	testCols := make([][]float64, test.NumCols())
	for j := range testCols {
		testCols[j] = test.Columns[j].Values
	}
	return metrics.AUC(model.Predict(testCols), test.Label)
}

func TestNewValidatesConfig(t *testing.T) {
	bad := DefaultConfig()
	bad.PearsonThreshold = 2
	if _, err := New(bad); err == nil {
		t.Error("accepted PearsonThreshold > 1")
	}
	bad = DefaultConfig()
	bad.IVThreshold = -1
	if _, err := New(bad); err == nil {
		t.Error("accepted negative IVThreshold")
	}
	bad = DefaultConfig()
	bad.Operators = []string{"no-such-op"}
	if _, err := New(bad); err == nil {
		t.Error("accepted unknown operator")
	}
}

func TestFitValidatesInput(t *testing.T) {
	eng, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Fit(&frame.Frame{}); err == nil {
		t.Error("accepted empty frame")
	}
	unlabelled := frame.NewWithShape(10, 2)
	unlabelled.Label = nil
	if _, _, err := eng.Fit(unlabelled); err == nil {
		t.Error("accepted unlabelled frame")
	}
}

func TestSAFEImprovesAUC(t *testing.T) {
	ds := testDataset(t)
	eng, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pipeline, report, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Iterations) != 1 {
		t.Fatalf("ran %d iterations, want 1", len(report.Iterations))
	}

	trainNew, err := pipeline.Transform(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	testNew, err := pipeline.Transform(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	aucOrig := evalGBDT(t, ds.Train, ds.Test)
	aucSafe := evalGBDT(t, trainNew, testNew)
	t.Logf("AUC orig=%.4f safe=%.4f", aucOrig, aucSafe)
	if aucSafe < aucOrig-0.01 {
		t.Errorf("SAFE features degraded AUC: %v -> %v", aucOrig, aucSafe)
	}
}

func TestSAFERecoversPlantedInteraction(t *testing.T) {
	// With planted products/ratios, at least one generated feature should
	// combine the two constituents of some planted interaction.
	ds := testDataset(t)
	eng, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pipeline, _, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	names := ds.Train.Names()
	recovered := false
	for _, out := range pipeline.Output {
		for _, it := range ds.Interactions {
			a, b := names[it.A], names[it.B]
			if containsToken(out, a) && containsToken(out, b) {
				recovered = true
			}
		}
	}
	if !recovered {
		t.Errorf("no generated feature pairs any planted interaction; outputs: %v", pipeline.Output)
	}
}

// containsToken reports whether formula references the column name as a
// whole token (x1 should not match x12).
func containsToken(formula, name string) bool {
	idx := 0
	for {
		k := strings.Index(formula[idx:], name)
		if k < 0 {
			return false
		}
		k += idx
		end := k + len(name)
		beforeOK := k == 0 || !isWord(formula[k-1])
		afterOK := end == len(formula) || !isWord(formula[end])
		if beforeOK && afterOK {
			return true
		}
		idx = k + 1
	}
}

func isWord(b byte) bool {
	return b == '_' || (b >= '0' && b <= '9') || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func TestPipelineBudgetRespected(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.MaxFeatures = 10
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pipeline, _, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	if got := pipeline.NumFeatures(); got > 10 {
		t.Errorf("pipeline emits %d features, budget 10", got)
	}
}

func TestTransformRowMatchesBatch(t *testing.T) {
	ds := testDataset(t)
	eng, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pipeline, _, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := pipeline.Transform(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, ds.Test.NumCols())
	for i := 0; i < 25; i++ {
		ds.Test.Row(i, row)
		got, err := pipeline.TransformRow(row)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			want := batch.Columns[j].Values[i]
			same := got[j] == want || (math.IsNaN(got[j]) && math.IsNaN(want))
			if !same {
				t.Fatalf("row %d feature %q: row-wise %v != batch %v",
					i, batch.Columns[j].Name, got[j], want)
			}
		}
	}
}

func TestTransformRowRejectsWrongWidth(t *testing.T) {
	ds := testDataset(t)
	eng, _ := New(DefaultConfig())
	pipeline, _, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.TransformRow([]float64{1, 2}); err == nil {
		t.Error("accepted wrong-width row")
	}
}

func TestMultipleIterations(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Iterations = 3
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pipeline, report, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Iterations) != 3 {
		t.Fatalf("ran %d iterations, want 3", len(report.Iterations))
	}
	// Later iterations can compose earlier features: the pipeline must
	// still evaluate consistently.
	out, err := pipeline.Transform(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != ds.Test.NumRows() {
		t.Errorf("transform rows = %d, want %d", out.NumRows(), ds.Test.NumRows())
	}
}

func TestTimeBudgetStopsIterations(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.Iterations = 100
	cfg.TimeBudget = time.Millisecond // expires after the first round check
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, report, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Iterations) >= 100 {
		t.Errorf("time budget ignored: ran %d iterations", len(report.Iterations))
	}
	if time.Since(start) > 2*time.Minute {
		t.Error("fit ran far past its budget")
	}
}

func TestReportStagesMonotone(t *testing.T) {
	ds := testDataset(t)
	eng, _ := New(DefaultConfig())
	_, report, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	ir := report.Iterations[0]
	if ir.CombosKept > ir.CombosMined {
		t.Errorf("kept %d combos > mined %d", ir.CombosKept, ir.CombosMined)
	}
	if ir.AfterIV > ir.Candidates {
		t.Errorf("IV stage grew the set: %d > %d", ir.AfterIV, ir.Candidates)
	}
	if ir.AfterPearson > ir.AfterIV {
		t.Errorf("Pearson stage grew the set: %d > %d", ir.AfterPearson, ir.AfterIV)
	}
	if ir.Selected > ir.AfterPearson {
		t.Errorf("ranking grew the set: %d > %d", ir.Selected, ir.AfterPearson)
	}
	if ir.CombosMined >= ir.SearchSpaceAll {
		t.Errorf("path mining did not shrink the search space: %d >= %d (T* << T violated)",
			ir.CombosMined, ir.SearchSpaceAll)
	}
}

func TestDeterministicFit(t *testing.T) {
	ds := testDataset(t)
	run := func() []string {
		eng, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		p, _, err := eng.Fit(ds.Train)
		if err != nil {
			t.Fatal(err)
		}
		return p.Output
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatalf("output widths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestFormulasInterpretable(t *testing.T) {
	ds := testDataset(t)
	eng, _ := New(DefaultConfig())
	pipeline, _, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	if pipeline.NumDerived() == 0 {
		t.Skip("no derived features selected on this seed")
	}
	for _, f := range pipeline.Formulas() {
		if f == "" {
			t.Error("empty formula")
		}
	}
}

func TestSelectStandalone(t *testing.T) {
	ds := testDataset(t)
	cols := make([][]float64, ds.Train.NumCols())
	for j := range cols {
		cols[j] = ds.Train.Columns[j].Values
	}
	cfg := DefaultSelectionConfig()
	cfg.MaxFeatures = 5
	sel, err := Select(cols, ds.Train.Label, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) > 5 {
		t.Errorf("selected %d > budget 5", len(sel))
	}
	seen := map[int]bool{}
	for _, j := range sel {
		if j < 0 || j >= len(cols) {
			t.Fatalf("index %d out of range", j)
		}
		if seen[j] {
			t.Fatalf("duplicate selection %d", j)
		}
		seen[j] = true
	}
}

func TestSelectAblationFlags(t *testing.T) {
	ds := testDataset(t)
	cols := make([][]float64, ds.Train.NumCols())
	for j := range cols {
		cols[j] = ds.Train.Columns[j].Values
	}
	cfg := DefaultSelectionConfig()
	cfg.SkipIV = true
	cfg.SkipPearson = true
	sel, err := Select(cols, ds.Train.Label, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != len(cols) {
		t.Errorf("with both stages skipped, got %d of %d features", len(sel), len(cols))
	}
}

func TestSelectErrors(t *testing.T) {
	if _, err := Select(nil, []float64{1}, DefaultSelectionConfig()); err == nil {
		t.Error("accepted no columns")
	}
	if _, err := Select([][]float64{{1}}, nil, DefaultSelectionConfig()); err == nil {
		t.Error("accepted no labels")
	}
}

func TestPearsonDedupKeepsHigherIV(t *testing.T) {
	// Two perfectly correlated columns; the one with higher IV must survive.
	n := 1000
	a := make([]float64, n)
	b := make([]float64, n)
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = float64(i % 100)
		b[i] = 2 * a[i] // corr 1 with a
		if i%2 == 0 {
			labels[i] = 1
		}
	}
	cols := [][]float64{a, b}
	ivs := []float64{0.5, 0.2}
	kept, err := pearsonDedup(context.Background(), cols, ivs, []int{0, 1}, 0.8, parallel.Get(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 1 || kept[0] != 0 {
		t.Errorf("kept %v, want [0]", kept)
	}
}

func TestIVFilterFallback(t *testing.T) {
	ivs := []float64{0.001, 0.002, 0.003, 0.004}
	kept := ivFilter(ivs, 0.1, 2)
	if len(kept) != 2 {
		t.Fatalf("fallback kept %d, want 2", len(kept))
	}
	// Top-2 by IV are indices 2 and 3.
	if kept[0] != 2 || kept[1] != 3 {
		t.Errorf("fallback kept %v, want [2 3]", kept)
	}
}
