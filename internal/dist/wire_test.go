package dist

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// --- message codec round trips ---

func TestHelloRoundTrip(t *testing.T) {
	msg := encodeHello()
	if msgType(msg) != msgHello {
		t.Fatalf("hello encodes as type %d", msgType(msg))
	}
	if err := decodeHello(msg); err != nil {
		t.Fatalf("decode of a fresh hello: %v", err)
	}
	// Corrupt the magic: a stray client speaking length-prefixed frames must
	// be rejected before anything is interpreted.
	bad := append([]byte(nil), msg...)
	bad[1] ^= 0xFF
	var pe *ProtocolError
	if err := decodeHello(bad); !errors.As(err, &pe) {
		t.Fatalf("bad magic decoded: %v", err)
	}
	// Version skew is permanent: the fleet upgrades atomically.
	skew := append([]byte(nil), msg...)
	binary.LittleEndian.PutUint32(skew[len(skew)-4:], Version+1)
	if err := decodeHello(skew); !errors.As(err, &pe) {
		t.Fatalf("version skew decoded: %v", err)
	}

	ackMsg := encodeHelloAck()
	if err := decodeHelloAck(ackMsg); err != nil {
		t.Fatalf("decode of a fresh helloAck: %v", err)
	}
	skew = append([]byte(nil), ackMsg...)
	binary.LittleEndian.PutUint32(skew[1:], Version+9)
	if err := decodeHelloAck(skew); !errors.As(err, &pe) {
		t.Fatalf("helloAck version skew decoded: %v", err)
	}
}

func TestFitOpenRoundTrip(t *testing.T) {
	in := &fitOpen{
		Source:     SourceSpec{Kind: SourceCSV, Path: "/data/train.csv", Label: "label", ChunkRows: 512},
		Names:      []string{"f0", "f1", "f2"},
		Task:       core.MulticlassTask(5),
		SketchSize: 256,
		Retry:      shard.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
	}
	out, err := decodeFitOpen(encodeFitOpen(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("fitOpen round trip:\n got %+v\nwant %+v", out, in)
	}
}

func TestAckRoundTrip(t *testing.T) {
	for _, in := range []*ack{
		{Re: msgFitOpen, OK: true},
		{Re: msgSetLive, Epoch: 7, OK: true},
		{Re: msgSetLive, Epoch: 3, OK: false, Msg: "no fit open"},
	} {
		out, err := decodeAck(encodeAck(in))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("ack round trip:\n got %+v\nwant %+v", out, in)
		}
	}
}

func TestSetLiveRoundTrip(t *testing.T) {
	in := &setLive{
		Epoch: 4,
		Nodes: []shard.NodeSpec{
			{Name: "f0*f1", Op: "mul", Inputs: []string{"f0", "f1"}},
			{Name: "log(f2)", Op: "log", Inputs: []string{"f2"}},
		},
		Live: []string{"f0", "f0*f1", "log(f2)"},
	}
	out, err := decodeSetLive(encodeSetLive(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("setLive round trip:\n got %+v\nwant %+v", out, in)
	}
}

// fullPassSpec populates every PassSpec field so the round trip covers the
// whole reified surface of the pass family.
func fullPassSpec() *shard.PassSpec {
	return &shard.PassSpec{
		Pass: 5, Kind: shard.PassHistCounts, Epoch: 2, Classes: 3,
		LiveCuts: [][]float64{{0.5, 1.5, 2.5}, {-1, 1}},
		Combos: []shard.ComboSpec{
			{Features: []int{0, 2}, Values: [][]float64{{1, 2, 3}, {4, 5}}},
		},
		Gens: []shard.GenSpec{{Op: "mul", Feats: []int{1, 3}}},
		Entries: []shard.EntrySpec{
			{Base: 1, Gen: shard.GenSpec{Op: "add", Feats: []int{0, 2}}, Cuts: []float64{0.25, 0.75}, NeedCodes: true},
		},
		Refines: []shard.RefineSpec{
			{Col: 2, Gen: shard.GenSpec{Op: "div", Feats: []int{4, 1}}, Ranks: []int64{10, 200},
				Lo: []float64{0, 0.5}, Hi: []float64{1, 1.5}, Resolved: []bool{false, true}},
		},
	}
}

func TestRunPassRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		assign assignment
	}{
		{"residue", assignment{Mod: 3, Residue: 1}},
		{"explicit", assignment{Explicit: []int{0, 5, 9}}},
		{"explicit-empty", assignment{Explicit: []int{}}},
	} {
		in := &runPass{PassID: 5, Assign: tc.assign, Spec: fullPassSpec()}
		out, err := decodeRunPass(encodeRunPass(in))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("%s: runPass round trip:\n got %+v\nwant %+v", tc.name, out, in)
		}
		// Explicit-vs-residue must survive the wire: a nil Explicit means the
		// residue class, a non-nil one (even empty) means exactly that list.
		if (out.Assign.Explicit == nil) != (tc.assign.Explicit == nil) {
			t.Fatalf("%s: Explicit nil-ness flipped on the wire", tc.name)
		}
	}
}

func TestAssignmentHas(t *testing.T) {
	residue := assignment{Mod: 3, Residue: 1}
	for idx, want := range map[int]bool{0: false, 1: true, 2: false, 4: true, 7: true} {
		if got := residue.has(idx); got != want {
			t.Fatalf("residue.has(%d) = %v, want %v", idx, got, want)
		}
	}
	explicit := assignment{Mod: 3, Residue: 1, Explicit: []int{0, 2}}
	for idx, want := range map[int]bool{0: true, 1: false, 2: true, 4: false} {
		if got := explicit.has(idx); got != want {
			t.Fatalf("explicit.has(%d) = %v, want %v", idx, got, want)
		}
	}
	var zero assignment
	if zero.has(0) {
		t.Fatal("zero assignment owns partition 0")
	}
}

func TestPartialRoundTrip(t *testing.T) {
	in := &partialMsg{
		PassID: 3,
		Partial: shard.Partial{
			Chunk: 2, Start: 1000, Rows: 500,
			Labels: []float64{0, 1, 1, 0},
			Blobs:  [][]byte{{1, 2, 3}, {0xFF}},
			Ints:   []int32{7, -1, 42},
			Codes:  [][]uint8{{0, 1, 2}, {3}},
		},
	}
	out, err := decodePartial(encodePartial(in.PassID, &in.Partial))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("partial round trip:\n got %+v\nwant %+v", out, in)
	}
}

func TestPassDoneRoundTrip(t *testing.T) {
	in := &passDone{PassID: 9, Chunks: 4, Rows: 2000, Retries: 3}
	out, err := decodePassDone(encodePassDone(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("passDone round trip:\n got %+v\nwant %+v", out, in)
	}
}

func TestPassErrRoundTrip(t *testing.T) {
	in := &passErr{PassID: 2, Chunk: 3, Attempts: 4, Transient: true, Msg: "read chunk: i/o timeout"}
	out, err := decodePassErr(encodePassErr(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("passErr round trip:\n got %+v\nwant %+v", out, in)
	}
}

// decodeAny routes a raw message through the codec the dispatch loops use.
func decodeAny(p []byte) error {
	var err error
	switch msgType(p) {
	case msgHello:
		err = decodeHello(p)
	case msgHelloAck:
		err = decodeHelloAck(p)
	case msgFitOpen:
		_, err = decodeFitOpen(p)
	case msgAck:
		_, err = decodeAck(p)
	case msgSetLive:
		_, err = decodeSetLive(p)
	case msgRunPass:
		_, err = decodeRunPass(p)
	case msgPartial:
		_, err = decodePartial(p)
	case msgPassDone:
		_, err = decodePassDone(p)
	case msgPassErr:
		_, err = decodePassErr(p)
	default:
		err = protoErr("unknown type %d", msgType(p))
	}
	return err
}

// TestDecodeRejectsTruncationAndTrailing sweeps every prefix of every
// message through its decoder: a payload cut anywhere must fail as a
// ProtocolError (never panic, never half-parse), and trailing garbage must
// be rejected too.
func TestDecodeRejectsTruncationAndTrailing(t *testing.T) {
	p := &shard.Partial{Chunk: 1, Start: 0, Rows: 4, Labels: []float64{1, 0},
		Blobs: [][]byte{{9}}, Ints: []int32{3}, Codes: [][]uint8{{1}}}
	msgs := map[string][]byte{
		"hello":    encodeHello(),
		"helloAck": encodeHelloAck(),
		"fitOpen": encodeFitOpen(&fitOpen{
			Source: SourceSpec{Kind: SourceColstore, Path: "x.col"},
			Names:  []string{"a", "b"}, Task: core.BinaryTask(), SketchSize: 64,
		}),
		"ack":      encodeAck(&ack{Re: msgSetLive, Epoch: 1, OK: true, Msg: "m"}),
		"setLive":  encodeSetLive(&setLive{Epoch: 1, Nodes: []shard.NodeSpec{{Name: "n", Op: "o", Inputs: []string{"a"}}}, Live: []string{"a"}}),
		"runPass":  encodeRunPass(&runPass{PassID: 1, Assign: assignment{Mod: 2}, Spec: fullPassSpec()}),
		"partial":  encodePartial(1, p),
		"passDone": encodePassDone(&passDone{PassID: 1, Chunks: 2, Rows: 10}),
		"passErr":  encodePassErr(&passErr{PassID: 1, Chunk: 0, Attempts: 1, Msg: "m"}),
	}
	for name, msg := range msgs {
		if err := decodeAny(msg); err != nil {
			t.Fatalf("%s: intact message rejected: %v", name, err)
		}
		for cut := 1; cut < len(msg); cut++ {
			if err := decodeAny(msg[:cut]); err == nil {
				t.Fatalf("%s truncated to %d/%d bytes decoded without error", name, cut, len(msg))
			}
		}
		if err := decodeAny(append(append([]byte(nil), msg...), 0)); err == nil {
			t.Fatalf("%s with a trailing byte decoded without error", name)
		}
	}
}

// TestDecodeLengthGuard pins the allocation guard: a corrupted element count
// far beyond the remaining payload must fail fast instead of driving a giant
// make().
func TestDecodeLengthGuard(t *testing.T) {
	b := appendU8(nil, msgPartial)
	b = appendI64(b, 1) // pass id
	b = appendI64(b, 0) // chunk
	b = appendI64(b, 0) // start
	b = appendI64(b, 8) // rows
	b = appendU32(b, 0xFFFFFFFF)
	var pe *ProtocolError
	if err := decodeAny(b); !errors.As(err, &pe) {
		t.Fatalf("bogus 4G label count: %v", err)
	}
}

// --- framing ---

// TestFrameRoundTrip sends messages of several sizes across a framed pipe.
func TestFrameRoundTrip(t *testing.T) {
	coord, worker := Pipe()
	defer coord.Close()
	defer worker.Close()
	payloads := [][]byte{
		{msgShutdown},
		encodeHello(),
		append([]byte{msgPartial}, make([]byte, 1<<17)...), // spans the 64K buffers
	}
	go func() {
		for _, p := range payloads {
			if err := coord.Send(p); err != nil {
				return
			}
		}
	}()
	for i, want := range payloads {
		got, err := worker.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d corrupted in transit (%d bytes vs %d)", i, len(got), len(want))
		}
	}
}

func TestFrameRejectsEmptyMessage(t *testing.T) {
	coord, worker := Pipe()
	defer coord.Close()
	defer worker.Close()
	var fe *FrameError
	if err := coord.Send(nil); !errors.As(err, &fe) {
		t.Fatalf("empty send: %v", err)
	}
}

// rawFrame assembles [len | payload | crc] with an optional corrupted CRC.
func rawFrame(payload []byte, corruptCRC bool) []byte {
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	out = append(out, payload...)
	crc := crc32.Checksum(payload, castagnoli)
	if corruptCRC {
		crc ^= 0xDEADBEEF
	}
	return binary.LittleEndian.AppendUint32(out, crc)
}

// recvRaw writes raw bytes into one end of a pipe and returns what a framed
// Conn on the other end makes of them.
func recvRaw(t *testing.T, raw []byte) error {
	t.Helper()
	a, b := net.Pipe()
	conn := NewConn(a)
	defer conn.Close()
	defer b.Close()
	go func() { _, _ = b.Write(raw) }()
	_, err := conn.Recv()
	return err
}

// TestFrameRejectsCorruption pins the CRC and length guards: a flipped
// checksum, a zero length, and a length beyond the frame cap are all
// permanent FrameErrors — a stream that framed wrong cannot be trusted.
func TestFrameRejectsCorruption(t *testing.T) {
	var fe *FrameError
	if err := recvRaw(t, rawFrame([]byte{msgShutdown, 1, 2}, true)); !errors.As(err, &fe) {
		t.Fatalf("corrupted CRC: %v", err)
	}
	if err := recvRaw(t, binary.LittleEndian.AppendUint32(nil, 0)); !errors.As(err, &fe) {
		t.Fatalf("zero-length frame: %v", err)
	}
	huge := binary.LittleEndian.AppendUint32(nil, maxFramePayload+1)
	if err := recvRaw(t, huge); !errors.As(err, &fe) {
		t.Fatalf("oversized length prefix: %v", err)
	}
	// An intact frame through the same path parses fine.
	a, b := net.Pipe()
	conn := NewConn(a)
	defer conn.Close()
	defer b.Close()
	go func() { _, _ = b.Write(rawFrame(encodeHello(), false)) }()
	msg, err := conn.Recv()
	if err != nil {
		t.Fatalf("intact raw frame: %v", err)
	}
	if err := decodeHello(msg); err != nil {
		t.Fatal(err)
	}
}
