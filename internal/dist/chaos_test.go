package dist

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// chaosFleet wraps every coordinator-side connection of a pipe fleet with
// a seeded fault plan (seed varied per worker so faults de-correlate).
func chaosFleet(t *testing.T, ctx context.Context, n int, plan ChaosPlan) *fleet {
	t.Helper()
	fl := pipeFleet(t, ctx, n)
	for i, c := range fl.conns {
		p := plan
		p.Seed += int64(i * 101)
		fl.conns[i] = Chaos(c, p)
	}
	return fl
}

// TestDistributedFitChaosTransport pins fault-recovery determinism: with
// dropped (transiently failing), duplicated, and delayed partial frames on
// every worker connection, the fit recovers below the merge — retries
// re-deliver dropped partials, duplicates drop by partition index — and
// selects bit-identically to the clean local fit, with the absorbed
// retries visible in Stats.Retries.
func TestDistributedFitChaosTransport(t *testing.T) {
	const rows, dim, parts = 2000, 8, 4
	chunkRows := (rows + parts - 1) / parts
	for _, tc := range taskCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			train := taskWorkload(t, rows, dim, tc)
			cfg := core.DefaultConfig()
			cfg.Task = tc.task
			cfg.Seed = 1
			shardFP, _ := localFingerprints(t, train, cfg, chunkRows)
			spec := writeSource(t, train, SourceColstore, chunkRows)

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			fl := chaosFleet(t, ctx, 2, ChaosPlan{
				Seed:      7,
				DropRate:  0.15,
				DupRate:   0.10,
				DelayRate: 0.20,
				MaxDelay:  500 * time.Microsecond,
			})
			p, st := distFit(t, ctx, spec, fl.conns, cfg)
			cancel()
			fl.wait()
			if fp := fingerprint(p); fp != shardFP {
				t.Fatalf("chaotic fit diverged from clean local fit:\n got: %s\nwant: %s", fp, shardFP)
			}
			if st.Retries == 0 {
				t.Fatal("chaos plan with 15% drop rate absorbed zero transport retries; faults not exercised")
			}
		})
	}
}

// TestDistributedFitWorkerKill pins mid-fit reassignment: one of two
// workers' connections dies permanently partway through the fit (after the
// partition count is known), the coordinator hands its unfolded partitions
// to the survivor, and the selection fingerprint still matches the local
// fit exactly.
func TestDistributedFitWorkerKill(t *testing.T) {
	const rows, dim, parts = 2000, 8, 4
	chunkRows := (rows + parts - 1) / parts
	tc := taskCases()[0] // binary
	train := taskWorkload(t, rows, dim, tc)
	cfg := core.DefaultConfig()
	cfg.Task = tc.task
	cfg.Seed = 1
	shardFP, _ := localFingerprints(t, train, cfg, chunkRows)
	spec := writeSource(t, train, SourceColstore, chunkRows)

	// Kill at several depths: right after the first pass's results (frame 8
	// is past handshake + setLive + pass-1 partials) and deeper into the
	// candidate passes. Every depth must recover to the same selection.
	// (A full clean fit at this scale delivers ~22 frames per worker.)
	for _, killAfter := range []int{8, 15, 20} {
		ctx, cancel := context.WithCancel(context.Background())
		fl := pipeFleet(t, ctx, 2)
		fl.conns[1] = Chaos(fl.conns[1], ChaosPlan{Seed: 3, KillAfter: killAfter})

		coord := NewCoordinator(spec, fl.conns...)
		src := openLocal(t, spec)
		p, _, _, err := shard.Fit(ctx, src, shard.Config{Core: cfg, Exec: coord})
		if err != nil {
			t.Fatalf("killAfter=%d: fit did not recover: %v", killAfter, err)
		}
		if coord.Workers() != 1 {
			t.Fatalf("killAfter=%d: %d workers alive after the kill, want 1", killAfter, coord.Workers())
		}
		coord.Close()
		cancel()
		fl.wait()
		if fp := fingerprint(p); fp != shardFP {
			t.Fatalf("killAfter=%d: recovered fit diverged:\n got: %s\nwant: %s", killAfter, fp, shardFP)
		}
	}
}

// TestDistributedFitAllWorkersLost pins the abort path: when every worker
// dies mid-fit there is no survivor to reassign to, and the fit must fail
// with a positioned error instead of hanging or selecting garbage.
func TestDistributedFitAllWorkersLost(t *testing.T) {
	const rows, dim, parts = 2000, 8, 4
	chunkRows := (rows + parts - 1) / parts
	tc := taskCases()[0]
	train := taskWorkload(t, rows, dim, tc)
	cfg := core.DefaultConfig()
	cfg.Task = tc.task
	cfg.Seed = 1
	spec := writeSource(t, train, SourceColstore, chunkRows)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fl := pipeFleet(t, ctx, 2)
	fl.conns[0] = Chaos(fl.conns[0], ChaosPlan{Seed: 1, KillAfter: 9})
	fl.conns[1] = Chaos(fl.conns[1], ChaosPlan{Seed: 2, KillAfter: 11})

	coord := NewCoordinator(spec, fl.conns...)
	src := openLocal(t, spec)
	_, _, _, err := shard.Fit(ctx, src, shard.Config{Core: cfg, Exec: coord})
	if err == nil {
		t.Fatal("fit succeeded with every worker dead")
	}
	coord.Close()
	cancel()
	fl.wait()
}
