package dist

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ChaosPlan seeds deterministic transport faults for testing the
// coordinator's recovery paths. Rates are per received partial frame;
// faults never touch handshake or control frames, so a chaotic run differs
// from a clean one only in when (not whether) partials arrive — and the
// partition-ordered fold keeps the fit bit-identical.
type ChaosPlan struct {
	// Seed drives the fault schedule; the same seed replays the same faults.
	Seed int64
	// DropRate is the probability a partial frame first surfaces as a
	// transient error; the frame is retained and delivered by the retry.
	DropRate float64
	// DupRate is the probability a partial frame is delivered twice; the
	// coordinator drops the duplicate by partition index.
	DupRate float64
	// DelayRate is the probability a partial frame is delayed by up to
	// MaxDelay before delivery.
	DelayRate float64
	// MaxDelay bounds injected delays (default 2ms).
	MaxDelay time.Duration
	// KillAfter, when > 0, kills the connection permanently after that many
	// received frames of any type — a worker death mid-pass.
	KillAfter int
}

// transientFault is a retryable transport error; frame.IsTransient
// recognises it through the Transienter interface.
type transientFault struct {
	msg string
}

func (e *transientFault) Error() string   { return "dist: transient: " + e.msg }
func (e *transientFault) Transient() bool { return true }

// killedError is the permanent error of a chaos-killed connection.
type killedError struct{}

func (killedError) Error() string { return "dist: chaos: connection killed" }

// chaosConn wraps a Conn's receive side with the plan's fault schedule.
type chaosConn struct {
	inner Conn
	plan  ChaosPlan

	mu     sync.Mutex
	rng    *rand.Rand
	held   []byte // frame withheld by a drop, delivered on retry
	dup    []byte // duplicate frame queued for redelivery
	frames int
	killed bool
}

// Chaos wraps a connection with a seeded fault plan. Use on the
// coordinator's end: injected faults then exercise exactly the retry,
// dedup, and reassignment paths a flaky network would.
func Chaos(inner Conn, plan ChaosPlan) Conn {
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = 2 * time.Millisecond
	}
	return &chaosConn{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Send implements Conn; the send side is fault-free (coordinator requests
// are cheap to keep reliable; the interesting recovery paths are on
// responses).
func (c *chaosConn) Send(msg []byte) error {
	c.mu.Lock()
	killed := c.killed
	c.mu.Unlock()
	if killed {
		return killedError{}
	}
	return c.inner.Send(msg)
}

// Recv implements Conn with the fault schedule. The mutex is never held
// across the blocking inner read — Send must stay callable from another
// goroutine while a Recv is in flight, or a synchronous transport
// (net.Pipe) deadlocks.
func (c *chaosConn) Recv() ([]byte, error) {
	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return nil, killedError{}
	}
	if c.held != nil {
		msg := c.held
		c.held = nil
		c.mu.Unlock()
		return msg, nil
	}
	if c.dup != nil {
		msg := c.dup
		c.dup = nil
		c.mu.Unlock()
		return msg, nil
	}
	c.mu.Unlock()
	msg, err := c.inner.Recv()
	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return nil, killedError{}
	}
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.frames++
	if c.plan.KillAfter > 0 && c.frames >= c.plan.KillAfter {
		c.killed = true
		c.mu.Unlock()
		c.inner.Close()
		return nil, killedError{}
	}
	if len(msg) == 0 || msg[0] != msgPartial {
		c.mu.Unlock()
		return msg, nil
	}
	roll := c.rng.Float64()
	switch {
	case roll < c.plan.DropRate:
		c.held = msg
		frames := c.frames
		c.mu.Unlock()
		return nil, &transientFault{msg: fmt.Sprintf("injected drop of frame %d", frames)}
	case roll < c.plan.DropRate+c.plan.DupRate:
		c.dup = append([]byte(nil), msg...)
		c.mu.Unlock()
		return msg, nil
	case roll < c.plan.DropRate+c.plan.DupRate+c.plan.DelayRate:
		d := time.Duration(c.rng.Int63n(int64(c.plan.MaxDelay) + 1))
		c.mu.Unlock()
		time.Sleep(d)
		return msg, nil
	}
	c.mu.Unlock()
	return msg, nil
}

// Close implements Conn.
func (c *chaosConn) Close() error { return c.inner.Close() }
