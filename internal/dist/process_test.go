package dist

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// workerProcEnv re-execs the test binary as a worker process when set: the
// distributed acceptance pin needs real OS processes on the worker side, not
// goroutines sharing the coordinator's address space.
const workerProcEnv = "SAFE_DIST_TEST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerProcEnv) == "1" {
		os.Exit(workerProcMain())
	}
	os.Exit(m.Run())
}

// workerProcMain is the re-exec'd worker: a Server on an ephemeral loopback
// port, its address announced on stdout, drained cleanly by SIGTERM — the
// same lifecycle cmd/safe-worker wires.
func workerProcMain() int {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println(srv.Addr())
	if err := srv.Serve(ctx); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// startWorkerProc spawns one worker process and returns its dialable
// address.
func startWorkerProc(t *testing.T) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), workerProcEnv+"=1")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	addr, err := bufio.NewReader(out).ReadString('\n')
	if err != nil {
		t.Fatalf("worker process announced no address: %v", err)
	}
	return cmd, strings.TrimSpace(addr)
}

// waitProc waits for a process to exit, bounded.
func waitProc(cmd *exec.Cmd, d time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		return fmt.Errorf("still running after %v", d)
	}
}

// TestDistributedFitWorkerProcesses is the cross-process acceptance pin:
// two real worker OS processes (re-exec'd test binary) serve a fit over
// loopback TCP, the selection is bit-identical to the local sharded fit,
// and a SIGTERM afterwards drains both processes to a clean exit — the
// contract cmd/safe-worker documents.
func TestDistributedFitWorkerProcesses(t *testing.T) {
	const rows, dim, parts = 2000, 8, 4
	chunkRows := (rows + parts - 1) / parts
	tc := taskCases()[0] // binary
	train := taskWorkload(t, rows, dim, tc)
	cfg := core.DefaultConfig()
	cfg.Task = tc.task
	cfg.Seed = 1
	shardFP, _ := localFingerprints(t, train, cfg, chunkRows)
	spec := writeSource(t, train, SourceColstore, chunkRows)

	var cmds []*exec.Cmd
	var conns []Conn
	for i := 0; i < 2; i++ {
		cmd, addr := startWorkerProc(t)
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial worker process %d at %s: %v", i, addr, err)
		}
		cmds = append(cmds, cmd)
		conns = append(conns, NewConn(nc))
	}

	coord := NewCoordinator(spec, conns...)
	src := openLocal(t, spec)
	p, _, st, err := shard.Fit(context.Background(), src, shard.Config{Core: cfg, Exec: coord})
	if err != nil {
		t.Fatalf("fit over worker processes: %v", err)
	}
	coord.Close()
	if fp := fingerprint(p); fp != shardFP {
		t.Fatalf("fit over worker processes diverged from local fit:\n got: %s\nwant: %s", fp, shardFP)
	}
	if st.Partitions != parts {
		t.Fatalf("fit saw %d partitions, want %d", st.Partitions, parts)
	}

	for i, cmd := range cmds {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("signal worker process %d: %v", i, err)
		}
		if err := waitProc(cmd, 10*time.Second); err != nil {
			t.Fatalf("worker process %d did not drain cleanly on SIGTERM: %v", i, err)
		}
	}
}
