package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/colstore"
	"repro/internal/frame"
	"repro/internal/shard"
)

// ServeConn runs one worker session over a connection: hello handshake,
// fitOpen (the worker opens its own handle on the shared dataset), then a
// loop of setLive epochs and streaming passes until the coordinator sends
// shutdown or the connection ends. Cancelling ctx closes the connection,
// which unblocks any in-flight Recv — a SIGTERM'd worker drains its current
// send and exits.
//
// Returns nil on a clean shutdown (or the coordinator hanging up between
// messages), ctx.Err() on cancellation, and the underlying error otherwise.
func ServeConn(ctx context.Context, conn Conn) error {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	s := &session{ctx: ctx, conn: conn}
	defer s.closeSource()
	for {
		msg, err := conn.Recv()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // coordinator hung up between messages
			}
			return err
		}
		switch msgType(msg) {
		case msgHello:
			if err := decodeHello(msg); err != nil {
				return err
			}
			if err := conn.Send(encodeHelloAck()); err != nil {
				return err
			}
		case msgFitOpen:
			if err := s.handleFitOpen(msg); err != nil {
				return err
			}
		case msgSetLive:
			if err := s.handleSetLive(msg); err != nil {
				return err
			}
		case msgRunPass:
			if err := s.handleRunPass(msg); err != nil {
				return err
			}
		case msgShutdown:
			return nil
		default:
			return protoErr("unexpected message type %d", msgType(msg))
		}
	}
}

// session is one coordinator's state on a worker: the open dataset handle
// and the pass-compute state machine.
type session struct {
	ctx    context.Context
	conn   Conn
	ws     *shard.WorkerState
	src    frame.ChunkSource
	closer io.Closer

	retries     int64 // written atomically by the retry source
	sentRetries int64 // retries already reported in a passDone
}

func (s *session) closeSource() {
	if s.closer != nil {
		_ = s.closer.Close()
		s.closer = nil
	}
	s.src = nil
}

// openSource opens the worker's own handle on the dataset named by the
// spec.
func (s *session) openSource(spec *SourceSpec) (frame.ChunkSource, io.Closer, error) {
	switch spec.Kind {
	case SourceCSV:
		src, err := frame.OpenCSVChunks(spec.Path, spec.Label, spec.ChunkRows)
		if err != nil {
			return nil, nil, err
		}
		return src, src, nil
	case SourceColstore:
		src, err := colstore.OpenSource(spec.Path)
		if err != nil {
			return nil, nil, err
		}
		return src, src, nil
	default:
		return nil, nil, protoErr("unknown source kind %d", spec.Kind)
	}
}

// handleFitOpen opens the dataset and builds the pass-compute state. The
// outcome goes back as an ack; only transport failures end the session.
func (s *session) handleFitOpen(msg []byte) error {
	o, err := decodeFitOpen(msg)
	if err != nil {
		return err
	}
	s.closeSource()
	s.ws = nil
	src, closer, err := s.openSource(&o.Source)
	if err != nil {
		return s.conn.Send(encodeAck(&ack{Re: msgFitOpen, Msg: fmt.Sprintf("open source: %v", err)}))
	}
	got := src.Names()
	if len(got) != len(o.Names) {
		closer.Close()
		return s.conn.Send(encodeAck(&ack{Re: msgFitOpen,
			Msg: fmt.Sprintf("source has %d columns, coordinator expects %d", len(got), len(o.Names))}))
	}
	for i, name := range got {
		if name != o.Names[i] {
			closer.Close()
			return s.conn.Send(encodeAck(&ack{Re: msgFitOpen,
				Msg: fmt.Sprintf("source column %d is %q, coordinator expects %q", i, name, o.Names[i])}))
		}
	}
	s.ws = shard.NewWorkerState(o.Names, o.Task, o.SketchSize)
	s.closer = closer
	s.src = shard.NewRetrySource(s.ctx, src, o.Retry, &s.retries)
	return s.conn.Send(encodeAck(&ack{Re: msgFitOpen, OK: true}))
}

// handleSetLive installs a live-set epoch and acknowledges it.
func (s *session) handleSetLive(msg []byte) error {
	m, err := decodeSetLive(msg)
	if err != nil {
		return err
	}
	if s.ws == nil {
		return s.conn.Send(encodeAck(&ack{Re: msgSetLive, Epoch: m.Epoch, Msg: "no fit open"}))
	}
	if err := s.ws.SetLive(m.Epoch, m.Nodes, m.Live); err != nil {
		return s.conn.Send(encodeAck(&ack{Re: msgSetLive, Epoch: m.Epoch, Msg: err.Error()}))
	}
	return s.conn.Send(encodeAck(&ack{Re: msgSetLive, Epoch: m.Epoch, OK: true}))
}

// handleRunPass streams the whole source once, computes a partial for every
// assigned partition, and ships each as soon as it is ready; passDone
// closes the assignment. Compute and read failures report as passErr —
// positioned, permanent — and abandon the pass without ending the session
// (the coordinator decides whether the fit dies).
func (s *session) handleRunPass(msg []byte) error {
	m, err := decodeRunPass(msg)
	if err != nil {
		return err
	}
	if s.ws == nil || s.src == nil {
		return s.conn.Send(encodePassErr(&passErr{PassID: m.PassID, Chunk: -1, Attempts: 1, Msg: "no fit open"}))
	}
	if err := s.src.Reset(); err != nil {
		return s.conn.Send(encodePassErr(&passErr{PassID: m.PassID, Chunk: -1, Attempts: 1,
			Msg: fmt.Sprintf("reset source: %v", err)}))
	}
	done := passDone{PassID: m.PassID}
	idx := 0
	for {
		if err := s.ctx.Err(); err != nil {
			return err
		}
		c, err := s.src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return s.sendReadErr(m.PassID, idx, err)
		}
		idx = c.Index + 1
		if !m.Assign.has(c.Index) {
			continue
		}
		p, err := s.ws.ComputePartial(m.Spec, c)
		if err != nil {
			return s.conn.Send(encodePassErr(&passErr{PassID: m.PassID, Chunk: c.Index, Attempts: 1, Msg: err.Error()}))
		}
		if err := s.conn.Send(encodePartial(m.PassID, p)); err != nil {
			return err
		}
		done.Chunks++
		done.Rows += int64(p.Rows)
	}
	total := atomic.LoadInt64(&s.retries)
	done.Retries = total - s.sentRetries
	s.sentRetries = total
	return s.conn.Send(encodePassDone(&done))
}

// sendReadErr reports a chunk-read failure (retries already exhausted below
// us) as a positioned passErr.
func (s *session) sendReadErr(passID, idx int, err error) error {
	if s.ctx.Err() != nil {
		return s.ctx.Err()
	}
	chunk, attempts := idx, 1
	var pe *shard.PassError
	if errors.As(err, &pe) {
		chunk, attempts = pe.Chunk, pe.Attempts
	}
	return s.conn.Send(encodePassErr(&passErr{PassID: passID, Chunk: chunk, Attempts: attempts, Msg: err.Error()}))
}

// Server accepts worker sessions over TCP; each connection serves one
// coordinator independently (its own dataset handle and pass state), so
// one worker process can serve several fits.
type Server struct {
	ln net.Listener
	wg sync.WaitGroup

	mu    sync.Mutex
	conns map[Conn]struct{}
}

// NewServer listens on addr (e.g. ":7070", "127.0.0.1:0").
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Server{ln: ln, conns: make(map[Conn]struct{})}, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts sessions until ctx is cancelled or the listener closes,
// then waits for every in-flight session to drain. Session errors end that
// session only.
func (s *Server) Serve(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() { s.ln.Close() })
	defer stop()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			for conn := range s.conns {
				conn.Close()
			}
			s.mu.Unlock()
			s.wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		conn := NewConn(nc)
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = ServeConn(ctx, conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener; a concurrent Serve drains and returns.
func (s *Server) Close() error { return s.ln.Close() }
