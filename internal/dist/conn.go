package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
)

// maxFramePayload bounds one frame's payload: large enough for any real
// partial (a pass over a wide candidate set ships a few MB per chunk), small
// enough that a corrupted length prefix cannot drive a runaway allocation.
const maxFramePayload = 1 << 30

// castagnoli is the CRC-32C table guarding every frame, the same polynomial
// colstore uses for block checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Conn is one ordered, reliable message stream between coordinator and
// worker. Send and Recv carry whole protocol messages (type byte +
// payload); implementations add framing, checksums, and fault semantics.
// A Conn is used from one goroutine per direction at a time.
//
// Errors that implement frame.Transienter with Transient() == true are
// retryable in place — the next Recv may deliver the frame the failed call
// did not. All other errors are permanent: the peer is gone.
type Conn interface {
	Send(msg []byte) error
	Recv() ([]byte, error)
	Close() error
}

// FrameError is a permanent framing violation on the wire: a CRC mismatch,
// an oversized length prefix, or a short frame. Unlike a transient fault,
// a broken frame means the stream can no longer be trusted.
type FrameError struct {
	Reason string
}

// Error implements error.
func (e *FrameError) Error() string { return "dist: frame: " + e.Reason }

// streamConn frames messages over any reliable byte stream as
// [u32 payload length | payload | u32 CRC-32C(payload)], little-endian.
type streamConn struct {
	c  io.Closer
	br *bufio.Reader
	bw *bufio.Writer
}

// NewConn frames protocol messages over a reliable byte stream — a TCP
// connection or one end of a net.Pipe.
func NewConn(c net.Conn) Conn {
	return &streamConn{c: c, br: bufio.NewReaderSize(c, 1<<16), bw: bufio.NewWriterSize(c, 1<<16)}
}

// Send implements Conn.
func (s *streamConn) Send(msg []byte) error {
	if len(msg) == 0 {
		return &FrameError{Reason: "empty message"}
	}
	if len(msg) > maxFramePayload {
		return &FrameError{Reason: fmt.Sprintf("message of %d bytes exceeds frame cap", len(msg))}
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := s.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := s.bw.Write(msg); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(hdr[:], crc32.Checksum(msg, castagnoli))
	if _, err := s.bw.Write(hdr[:]); err != nil {
		return err
	}
	return s.bw.Flush()
}

// Recv implements Conn.
func (s *streamConn) Recv() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(s.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFramePayload {
		return nil, &FrameError{Reason: fmt.Sprintf("bad frame length %d", n)}
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(s.br, msg); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(s.br, hdr[:]); err != nil {
		return nil, err
	}
	if got, want := crc32.Checksum(msg, castagnoli), binary.LittleEndian.Uint32(hdr[:]); got != want {
		return nil, &FrameError{Reason: fmt.Sprintf("frame checksum mismatch: %08x != %08x", got, want)}
	}
	return msg, nil
}

// Close implements Conn.
func (s *streamConn) Close() error { return s.c.Close() }

// Pipe returns an in-process connection pair: the coordinator end and the
// worker end of a net.Pipe, framed like any network transport — the
// serialization path is identical to TCP, only the bytes never leave the
// process.
func Pipe() (coord, worker Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
