package dist

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// distLeakCheck snapshots the goroutine count and asserts the process
// returns to it (the shard compute pools are persistent by design, so
// callers take the baseline after a warmup fit has populated them).
func distLeakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// runDistOnce drives one full distributed fit over a fresh fleet and tears
// everything down: coordinator closed, fleet cancelled and drained.
func runDistOnce(t *testing.T, spec SourceSpec, cfg core.Config, transport string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var fl *fleet
	if transport == "pipe" {
		fl = pipeFleet(t, ctx, 2)
	} else {
		fl = tcpFleet(t, ctx, 2)
	}
	distFit(t, ctx, spec, fl.conns, cfg)
	cancel()
	fl.wait()
}

// TestDistributedLifecycleNoLeak pins clean teardown on the happy path:
// after complete fits over both transports, closing the coordinator and
// draining the fleet leaves no goroutine behind. Runs under -race in CI.
func TestDistributedLifecycleNoLeak(t *testing.T) {
	const rows, dim, parts = 2000, 8, 4
	chunkRows := (rows + parts - 1) / parts
	tc := taskCases()[0]
	train := taskWorkload(t, rows, dim, tc)
	cfg := core.DefaultConfig()
	cfg.Task = tc.task
	cfg.Seed = 1
	spec := writeSource(t, train, SourceColstore, chunkRows)

	// Warm both transports once so persistent pools exist, then baseline.
	runDistOnce(t, spec, cfg, "pipe")
	runDistOnce(t, spec, cfg, "tcp")
	check := distLeakCheck(t)
	runDistOnce(t, spec, cfg, "pipe")
	runDistOnce(t, spec, cfg, "tcp")
	check()
}

// hookConn fires a callback once, after its Nth successfully received
// frame — used to cancel a fit at a deterministic depth.
type hookConn struct {
	Conn
	after int
	hook  func()
	n     int
	once  sync.Once
}

func (h *hookConn) Recv() ([]byte, error) {
	msg, err := h.Conn.Recv()
	if err == nil {
		h.n++
		if h.n >= h.after {
			h.once.Do(h.hook)
		}
	}
	return msg, err
}

// TestDistributedFitCancelMidFit pins prompt abort: the fit context is
// cancelled mid-pass (several partials already folded, workers still
// streaming), shard.Fit must return the context error, and closing the
// coordinator must drain its readers and senders without leaking a
// goroutine — even though the workers are still alive and mid-send.
func TestDistributedFitCancelMidFit(t *testing.T) {
	const rows, dim, parts = 2000, 8, 4
	chunkRows := (rows + parts - 1) / parts
	tc := taskCases()[0]
	train := taskWorkload(t, rows, dim, tc)
	cfg := core.DefaultConfig()
	cfg.Task = tc.task
	cfg.Seed = 1
	spec := writeSource(t, train, SourceColstore, chunkRows)

	runDistOnce(t, spec, cfg, "pipe")
	check := distLeakCheck(t)

	// The fleet outlives the fit on purpose: only the fit's context is
	// cancelled, so the abort is the coordinator's to handle.
	fleetCtx, fleetCancel := context.WithCancel(context.Background())
	fl := pipeFleet(t, fleetCtx, 2)
	fitCtx, fitCancel := context.WithCancel(context.Background())
	defer fitCancel()
	// A clean fit delivers ~22 frames per worker; frame 10 lands mid-pass.
	fl.conns[0] = &hookConn{Conn: fl.conns[0], after: 10, hook: fitCancel}

	coord := NewCoordinator(spec, fl.conns...)
	src := openLocal(t, spec)
	_, _, _, err := shard.Fit(fitCtx, src, shard.Config{Core: cfg, Exec: coord})
	if err == nil {
		t.Fatal("fit completed despite mid-pass cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fit returned %v, want context.Canceled", err)
	}
	coord.Close()
	fleetCancel()
	fl.wait()
	check()
}

// TestServerDrainOnCancel pins the worker server's lifecycle: cancelling the
// serve context closes the listener and every in-flight session, Serve
// returns the context error after the drain, and no goroutine survives.
func TestServerDrainOnCancel(t *testing.T) {
	check := distLeakCheck(t)
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ctx) }()

	// Open a session and complete the handshake so the drain has a live
	// connection to unwind, not just the listener.
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(nc)
	defer conn.Close()
	if err := conn.Send(encodeHello()); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := decodeHelloAck(msg); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Serve returned %v after cancellation, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain within 5s of cancellation")
	}
	// The session's connection must be dead from the client's side too.
	if _, err := conn.Recv(); err == nil {
		t.Fatal("session connection still delivering frames after server drain")
	}
	check()
}
