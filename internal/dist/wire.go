// Package dist splits the sharded fit across processes: a coordinator runs
// the multi-pass selection loop (internal/shard with Config.Exec set) and
// delegates per-partition pass compute to workers over a versioned,
// length-prefixed, CRC-guarded binary protocol. Partition partials fold at
// the coordinator in partition-index order — the exact accumulation
// sequence of the local engine — so the selected features are bit-identical
// to shard.Fit and core.Fit for every worker count, transport, and
// recovered transient fault.
package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// Version is the protocol version exchanged in the hello handshake. Bump on
// any frame-layout or message change; coordinator and worker must match
// exactly (the fleet upgrades atomically — no cross-version support).
const Version = 1

// magic opens every hello frame, so a worker rejects a stray client that
// happens to speak length-prefixed frames before interpreting anything.
const magic = "SAFEdst1"

// Message types. Part of the wire format — never renumber or reuse.
const (
	msgHello    = 1  // coordinator → worker: magic + version
	msgHelloAck = 2  // worker → coordinator: version
	msgFitOpen  = 3  // coordinator → worker: schema, task, source, retry
	msgAck      = 4  // worker → coordinator: fitOpen/setLive outcome
	msgSetLive  = 5  // coordinator → worker: live-set epoch
	msgRunPass  = 6  // coordinator → worker: pass spec + partition assignment
	msgPartial  = 7  // worker → coordinator: one chunk's partial
	msgPassDone = 8  // worker → coordinator: assignment complete
	msgPassErr  = 9  // worker → coordinator: pass compute/read failure
	msgShutdown = 10 // coordinator → worker: end the session
)

// Source kinds a worker can open on its side of the wire.
const (
	// SourceCSV is a CSV file with a named label column, streamed in
	// ChunkRows-row partitions.
	SourceCSV = 1
	// SourceColstore is a colstore binary columnar file; its row groups are
	// the partitions (ChunkRows does not apply).
	SourceColstore = 2
)

// SourceSpec tells workers which dataset to stream. Every worker must see
// the same file content and produce the same partition geometry, or the
// coordinator aborts on fold-shape mismatches.
type SourceSpec struct {
	Kind      int // SourceCSV or SourceColstore
	Path      string
	Label     string // CSV label column; unused for colstore
	ChunkRows int    // CSV partition rows (<= 0: reader default); unused for colstore
}

// ProtocolError is a permanent wire-format violation: bad magic, version
// mismatch, unknown message type, or a payload that does not parse. It is
// never transient — a peer speaking the wrong protocol aborts the session.
type ProtocolError struct {
	Reason string
}

// Error implements error.
func (e *ProtocolError) Error() string { return "dist: protocol: " + e.Reason }

func protoErr(format string, args ...any) error {
	return &ProtocolError{Reason: fmt.Sprintf(format, args...)}
}

// --- primitive append/read helpers (little-endian) ---

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI32(b []byte, v int32) []byte  { return appendU32(b, uint32(v)) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = appendU32(b, uint32(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func appendF64s(b []byte, vs []float64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendF64(b, v)
	}
	return b
}

func appendI64s(b []byte, vs []int64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendI64(b, v)
	}
	return b
}

func appendI32s(b []byte, vs []int32) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendI32(b, v)
	}
	return b
}

func appendInts(b []byte, vs []int) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendI64(b, int64(v))
	}
	return b
}

func appendBytes(b []byte, v []byte) []byte {
	b = appendU32(b, uint32(len(v)))
	return append(b, v...)
}

func appendBools(b []byte, vs []bool) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// reader consumes a payload with sticky error state: every read reports
// success through ok(); the first failure poisons the rest, so decode code
// reads linearly and checks once.
type reader struct {
	b    []byte
	fail bool
}

func (r *reader) bad() { r.fail = true }

func (r *reader) u8() uint8 {
	if r.fail || len(r.b) < 1 {
		r.bad()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u32() uint32 {
	if r.fail || len(r.b) < 4 {
		r.bad()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.fail || len(r.b) < 8 {
		r.bad()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) i32() int32    { return int32(r.u32()) }
func (r *reader) i64() int64    { return int64(r.u64()) }
func (r *reader) f64() float64  { return math.Float64frombits(r.u64()) }
func (r *reader) boolean() bool { return r.u8() != 0 }
func (r *reader) length() int {
	n := r.u32()
	// A length can never exceed the remaining payload's element capacity;
	// reject early so a corrupted count cannot drive a giant allocation.
	if r.fail || uint64(n) > uint64(len(r.b)) {
		r.bad()
		return 0
	}
	return int(n)
}

func (r *reader) str() string {
	n := r.length()
	if r.fail {
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *reader) strs() []string {
	n := r.length()
	if r.fail {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}

func (r *reader) f64s() []float64 {
	n := r.u32()
	if r.fail || uint64(n)*8 > uint64(len(r.b)) {
		r.bad()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *reader) i64s() []int64 {
	n := r.u32()
	if r.fail || uint64(n)*8 > uint64(len(r.b)) {
		r.bad()
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.i64()
	}
	return out
}

func (r *reader) i32s() []int32 {
	n := r.u32()
	if r.fail || uint64(n)*4 > uint64(len(r.b)) {
		r.bad()
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.i32()
	}
	return out
}

func (r *reader) ints() []int {
	n := r.u32()
	if r.fail || uint64(n)*8 > uint64(len(r.b)) {
		r.bad()
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.i64())
	}
	return out
}

func (r *reader) bytes() []byte {
	n := r.length()
	if r.fail {
		return nil
	}
	out := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return out
}

func (r *reader) bools() []bool {
	n := r.length()
	if r.fail {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.boolean()
	}
	return out
}

// done returns a protocol error unless the payload parsed fully and
// exactly.
func (r *reader) done(what string) error {
	if r.fail {
		return protoErr("truncated %s", what)
	}
	if len(r.b) != 0 {
		return protoErr("%s has %d trailing bytes", what, len(r.b))
	}
	return nil
}

// --- handshake ---

func encodeHello() []byte {
	b := appendU8(nil, msgHello)
	b = append(b, magic...)
	return appendU32(b, Version)
}

func decodeHello(p []byte) error {
	r := &reader{b: p[1:]}
	if r.fail || len(r.b) < len(magic) {
		return protoErr("short hello")
	}
	got := string(r.b[:len(magic)])
	r.b = r.b[len(magic):]
	if got != magic {
		return protoErr("bad magic %q", got)
	}
	v := r.u32()
	if err := r.done("hello"); err != nil {
		return err
	}
	if v != Version {
		return protoErr("version mismatch: peer %d, local %d", v, Version)
	}
	return nil
}

func encodeHelloAck() []byte {
	return appendU32(appendU8(nil, msgHelloAck), Version)
}

func decodeHelloAck(p []byte) error {
	r := &reader{b: p[1:]}
	v := r.u32()
	if err := r.done("helloAck"); err != nil {
		return err
	}
	if v != Version {
		return protoErr("version mismatch: peer %d, local %d", v, Version)
	}
	return nil
}

// --- fitOpen ---

type fitOpen struct {
	Source     SourceSpec
	Names      []string
	Task       core.Task
	SketchSize int
	Retry      shard.RetryPolicy
}

func encodeFitOpen(o *fitOpen) []byte {
	b := appendU8(nil, msgFitOpen)
	b = appendU8(b, uint8(o.Source.Kind))
	b = appendString(b, o.Source.Path)
	b = appendString(b, o.Source.Label)
	b = appendI64(b, int64(o.Source.ChunkRows))
	b = appendStrings(b, o.Names)
	b = appendU8(b, uint8(o.Task.Kind))
	b = appendI64(b, int64(o.Task.Classes))
	b = appendI64(b, int64(o.SketchSize))
	b = appendI64(b, int64(o.Retry.MaxAttempts))
	b = appendI64(b, int64(o.Retry.BaseDelay))
	b = appendI64(b, int64(o.Retry.MaxDelay))
	return b
}

func decodeFitOpen(p []byte) (*fitOpen, error) {
	r := &reader{b: p[1:]}
	o := &fitOpen{}
	o.Source.Kind = int(r.u8())
	o.Source.Path = r.str()
	o.Source.Label = r.str()
	o.Source.ChunkRows = int(r.i64())
	o.Names = r.strs()
	o.Task.Kind = core.TaskKind(r.u8())
	o.Task.Classes = int(r.i64())
	o.SketchSize = int(r.i64())
	o.Retry.MaxAttempts = int(r.i64())
	o.Retry.BaseDelay = time.Duration(r.i64())
	o.Retry.MaxDelay = time.Duration(r.i64())
	return o, r.done("fitOpen")
}

// --- ack ---

type ack struct {
	Re    uint8 // message type being acknowledged
	Epoch int   // setLive acks: the installed epoch
	OK    bool
	Msg   string // failure detail when !OK
}

func encodeAck(a *ack) []byte {
	b := appendU8(nil, msgAck)
	b = appendU8(b, a.Re)
	b = appendI64(b, int64(a.Epoch))
	b = appendBools(b, []bool{a.OK})
	return appendString(b, a.Msg)
}

func decodeAck(p []byte) (*ack, error) {
	r := &reader{b: p[1:]}
	a := &ack{Re: r.u8(), Epoch: int(r.i64())}
	oks := r.bools()
	a.Msg = r.str()
	if err := r.done("ack"); err != nil {
		return nil, err
	}
	if len(oks) != 1 {
		return nil, protoErr("ack has %d ok flags", len(oks))
	}
	a.OK = oks[0]
	return a, nil
}

// --- setLive ---

type setLive struct {
	Epoch int
	Nodes []shard.NodeSpec
	Live  []string
}

func encodeSetLive(m *setLive) []byte {
	b := appendU8(nil, msgSetLive)
	b = appendI64(b, int64(m.Epoch))
	b = appendU32(b, uint32(len(m.Nodes)))
	for _, nd := range m.Nodes {
		b = appendString(b, nd.Name)
		b = appendString(b, nd.Op)
		b = appendStrings(b, nd.Inputs)
	}
	return appendStrings(b, m.Live)
}

func decodeSetLive(p []byte) (*setLive, error) {
	r := &reader{b: p[1:]}
	m := &setLive{Epoch: int(r.i64())}
	n := r.length()
	if !r.fail {
		m.Nodes = make([]shard.NodeSpec, n)
		for i := range m.Nodes {
			m.Nodes[i].Name = r.str()
			m.Nodes[i].Op = r.str()
			m.Nodes[i].Inputs = r.strs()
		}
	}
	m.Live = r.strs()
	return m, r.done("setLive")
}

// --- runPass ---

// assignment names the partitions a worker computes in a pass: the residue
// class {i : i mod Mod == Residue} when Explicit is nil, else exactly the
// Explicit list (used to reassign a dead worker's partitions mid-pass).
type assignment struct {
	Mod      int
	Residue  int
	Explicit []int
}

func (a *assignment) has(idx int) bool {
	if a.Explicit != nil {
		for _, e := range a.Explicit {
			if e == idx {
				return true
			}
		}
		return false
	}
	return a.Mod > 0 && idx%a.Mod == a.Residue
}

type runPass struct {
	PassID int
	Assign assignment
	Spec   *shard.PassSpec
}

func appendGenSpec(b []byte, g *shard.GenSpec) []byte {
	b = appendString(b, g.Op)
	return appendInts(b, g.Feats)
}

func readGenSpec(r *reader) shard.GenSpec {
	return shard.GenSpec{Op: r.str(), Feats: r.ints()}
}

func encodeRunPass(m *runPass) []byte {
	b := appendU8(nil, msgRunPass)
	b = appendI64(b, int64(m.PassID))
	b = appendI64(b, int64(m.Assign.Mod))
	b = appendI64(b, int64(m.Assign.Residue))
	b = appendBools(b, []bool{m.Assign.Explicit != nil})
	b = appendInts(b, m.Assign.Explicit)
	s := m.Spec
	b = appendI64(b, int64(s.Pass))
	b = appendU8(b, uint8(s.Kind))
	b = appendI64(b, int64(s.Epoch))
	b = appendI64(b, int64(s.Classes))
	b = appendU32(b, uint32(len(s.LiveCuts)))
	for _, cuts := range s.LiveCuts {
		b = appendF64s(b, cuts)
	}
	b = appendU32(b, uint32(len(s.Combos)))
	for i := range s.Combos {
		b = appendInts(b, s.Combos[i].Features)
		b = appendU32(b, uint32(len(s.Combos[i].Values)))
		for _, vs := range s.Combos[i].Values {
			b = appendF64s(b, vs)
		}
	}
	b = appendU32(b, uint32(len(s.Gens)))
	for i := range s.Gens {
		b = appendGenSpec(b, &s.Gens[i])
	}
	b = appendU32(b, uint32(len(s.Entries)))
	for i := range s.Entries {
		e := &s.Entries[i]
		b = appendI64(b, int64(e.Base))
		b = appendGenSpec(b, &e.Gen)
		b = appendF64s(b, e.Cuts)
		b = appendBools(b, []bool{e.NeedCodes})
	}
	b = appendU32(b, uint32(len(s.Refines)))
	for i := range s.Refines {
		rf := &s.Refines[i]
		b = appendI64(b, int64(rf.Col))
		b = appendGenSpec(b, &rf.Gen)
		b = appendI64s(b, rf.Ranks)
		b = appendF64s(b, rf.Lo)
		b = appendF64s(b, rf.Hi)
		b = appendBools(b, rf.Resolved)
	}
	return b
}

func decodeRunPass(p []byte) (*runPass, error) {
	r := &reader{b: p[1:]}
	m := &runPass{PassID: int(r.i64())}
	m.Assign.Mod = int(r.i64())
	m.Assign.Residue = int(r.i64())
	hasExplicit := r.bools()
	explicit := r.ints()
	if len(hasExplicit) == 1 && hasExplicit[0] {
		if explicit == nil {
			explicit = []int{}
		}
		m.Assign.Explicit = explicit
	}
	s := &shard.PassSpec{
		Pass:    int(r.i64()),
		Kind:    shard.PassKind(r.u8()),
		Epoch:   int(r.i64()),
		Classes: int(r.i64()),
	}
	if n := r.length(); !r.fail {
		s.LiveCuts = make([][]float64, n)
		for i := range s.LiveCuts {
			s.LiveCuts[i] = r.f64s()
		}
	}
	if n := r.length(); !r.fail {
		s.Combos = make([]shard.ComboSpec, n)
		for i := range s.Combos {
			s.Combos[i].Features = r.ints()
			if nv := r.length(); !r.fail {
				s.Combos[i].Values = make([][]float64, nv)
				for j := range s.Combos[i].Values {
					s.Combos[i].Values[j] = r.f64s()
				}
			}
		}
	}
	if n := r.length(); !r.fail {
		s.Gens = make([]shard.GenSpec, n)
		for i := range s.Gens {
			s.Gens[i] = readGenSpec(r)
		}
	}
	if n := r.length(); !r.fail {
		s.Entries = make([]shard.EntrySpec, n)
		for i := range s.Entries {
			s.Entries[i].Base = int(r.i64())
			s.Entries[i].Gen = readGenSpec(r)
			s.Entries[i].Cuts = r.f64s()
			if flags := r.bools(); len(flags) == 1 {
				s.Entries[i].NeedCodes = flags[0]
			}
		}
	}
	if n := r.length(); !r.fail {
		s.Refines = make([]shard.RefineSpec, n)
		for i := range s.Refines {
			s.Refines[i].Col = int(r.i64())
			s.Refines[i].Gen = readGenSpec(r)
			s.Refines[i].Ranks = r.i64s()
			s.Refines[i].Lo = r.f64s()
			s.Refines[i].Hi = r.f64s()
			s.Refines[i].Resolved = r.bools()
		}
	}
	m.Spec = s
	return m, r.done("runPass")
}

// --- partial ---

type partialMsg struct {
	PassID  int
	Partial shard.Partial
}

func encodePartial(passID int, p *shard.Partial) []byte {
	b := appendU8(nil, msgPartial)
	b = appendI64(b, int64(passID))
	b = appendI64(b, int64(p.Chunk))
	b = appendI64(b, int64(p.Start))
	b = appendI64(b, int64(p.Rows))
	b = appendF64s(b, p.Labels)
	b = appendU32(b, uint32(len(p.Blobs)))
	for _, blob := range p.Blobs {
		b = appendBytes(b, blob)
	}
	b = appendI32s(b, p.Ints)
	b = appendU32(b, uint32(len(p.Codes)))
	for _, codes := range p.Codes {
		b = appendBytes(b, codes)
	}
	return b
}

func decodePartial(p []byte) (*partialMsg, error) {
	r := &reader{b: p[1:]}
	m := &partialMsg{PassID: int(r.i64())}
	m.Partial.Chunk = int(r.i64())
	m.Partial.Start = int(r.i64())
	m.Partial.Rows = int(r.i64())
	m.Partial.Labels = r.f64s()
	if n := r.length(); !r.fail {
		m.Partial.Blobs = make([][]byte, n)
		for i := range m.Partial.Blobs {
			m.Partial.Blobs[i] = r.bytes()
		}
	}
	m.Partial.Ints = r.i32s()
	if n := r.length(); !r.fail {
		m.Partial.Codes = make([][]uint8, n)
		for i := range m.Partial.Codes {
			m.Partial.Codes[i] = r.bytes()
		}
	}
	return m, r.done("partial")
}

// --- passDone / passErr ---

type passDone struct {
	PassID  int
	Chunks  int
	Rows    int64
	Retries int64
}

func encodePassDone(m *passDone) []byte {
	b := appendU8(nil, msgPassDone)
	b = appendI64(b, int64(m.PassID))
	b = appendI64(b, int64(m.Chunks))
	b = appendI64(b, m.Rows)
	b = appendI64(b, m.Retries)
	return b
}

func decodePassDone(p []byte) (*passDone, error) {
	r := &reader{b: p[1:]}
	m := &passDone{
		PassID:  int(r.i64()),
		Chunks:  int(r.i64()),
		Rows:    r.i64(),
		Retries: r.i64(),
	}
	return m, r.done("passDone")
}

type passErr struct {
	PassID    int
	Chunk     int // 0-based chunk ordinal, -1 unknown
	Attempts  int
	Transient bool
	Msg       string
}

func encodePassErr(m *passErr) []byte {
	b := appendU8(nil, msgPassErr)
	b = appendI64(b, int64(m.PassID))
	b = appendI64(b, int64(m.Chunk))
	b = appendI64(b, int64(m.Attempts))
	b = appendBools(b, []bool{m.Transient})
	return appendString(b, m.Msg)
}

func decodePassErr(p []byte) (*passErr, error) {
	r := &reader{b: p[1:]}
	m := &passErr{PassID: int(r.i64()), Chunk: int(r.i64()), Attempts: int(r.i64())}
	if flags := r.bools(); len(flags) == 1 {
		m.Transient = flags[0]
	}
	m.Msg = r.str()
	return m, r.done("passErr")
}

func encodeShutdown() []byte { return appendU8(nil, msgShutdown) }
