package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/shard"
)

// Coordinator implements shard.Executor over a set of worker connections:
// each streaming pass is assigned across the live workers by partition
// residue, partials are folded strictly in partition-index order (duplicates
// dropped, gaps awaited), and faults are absorbed below the fold — transient
// frame errors retry on the shard retry schedule, and a worker death after
// the partition count is known reassigns its unfolded partitions to the
// survivors. Every recovery path preserves the fold sequence, so a
// recovered fit selects bit-identically to a fault-free one.
//
// A Coordinator serves one fit. It is not safe for concurrent use (the
// shard fit loop calls Open/SetLive/RunPass serially); Close may be called
// once, after the fit, from the owning goroutine.
type Coordinator struct {
	// TransportRetry bounds transient frame-receive retries per message
	// (defaults to shard.DefaultRetryPolicy).
	TransportRetry shard.RetryPolicy
	// SourceRetry is the chunk-read retry policy workers apply below their
	// partition streams (zero value: no retrying).
	SourceRetry shard.RetryPolicy

	src     SourceSpec
	workers []*workerConn
	events  chan event
	closed  chan struct{}
	wg      sync.WaitGroup

	opened    bool
	chunks    int          // partitions per pass; 0 until the first pass completes
	transient atomic.Int64 // transport retries absorbed, all readers

	closeOnce sync.Once
}

// workerConn is the coordinator's view of one worker.
type workerConn struct {
	id   int
	conn Conn
	send sync.Mutex // serialises frames from concurrent coordinator sends

	alive       bool
	outstanding int // assignments sent but not passDone'd (current pass)
	assigns     []assignment
}

// event is one routed worker message (or the worker's permanent failure).
type event struct {
	worker int
	msg    any   // *ack, *partialMsg, *passDone, *passErr
	err    error // permanent transport failure: the worker is gone
}

// NewCoordinator builds a coordinator over the given worker connections.
// src names the dataset every worker streams; conns carry the protocol
// (NewConn over TCP, Pipe for in-process, Chaos for fault injection).
func NewCoordinator(src SourceSpec, conns ...Conn) *Coordinator {
	c := &Coordinator{
		TransportRetry: shard.DefaultRetryPolicy(),
		src:            src,
		events:         make(chan event, 64),
		closed:         make(chan struct{}),
	}
	for i, conn := range conns {
		c.workers = append(c.workers, &workerConn{id: i, conn: conn, alive: true})
	}
	return c
}

// Workers returns how many workers are still alive.
func (c *Coordinator) Workers() int {
	n := 0
	for _, w := range c.workers {
		if w.alive {
			n++
		}
	}
	return n
}

// Close ends the session by closing every connection — workers treat the
// resulting EOF as a clean hangup (ServeConn returns nil), and closing is
// the one action guaranteed to unblock any in-flight send or receive, so
// Close never hangs even after an aborted fit left a worker mid-stream.
// Waits for the reader goroutines to drain; safe after a failed fit;
// idempotent.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		for _, w := range c.workers {
			_ = w.conn.Close()
		}
	})
	c.wg.Wait()
	return nil
}

// recvDirect receives one frame outside the reader loop (handshake only),
// absorbing transient faults on the retry schedule.
func (c *Coordinator) recvDirect(ctx context.Context, w *workerConn) ([]byte, error) {
	for attempt := 1; ; attempt++ {
		msg, err := w.conn.Recv()
		if err == nil {
			return msg, nil
		}
		if !frame.IsTransient(err) || attempt >= c.TransportRetry.MaxAttempts {
			return nil, err
		}
		if serr := sleepCtx(ctx, c.TransportRetry.Delay(attempt)); serr != nil {
			return nil, serr
		}
		c.transient.Add(1)
	}
}

// Open implements shard.Executor: handshake and fitOpen on every
// connection, then the per-worker reader goroutines start. All workers must
// open successfully — a fit that cannot reach its fleet should fail fast,
// before any pass.
func (c *Coordinator) Open(ctx context.Context, names []string, task core.Task, sketchSize int) error {
	if len(c.workers) == 0 {
		return errors.New("dist: coordinator has no workers")
	}
	if c.opened {
		return errors.New("dist: coordinator already opened")
	}
	open := encodeFitOpen(&fitOpen{
		Source:     c.src,
		Names:      names,
		Task:       task,
		SketchSize: sketchSize,
		Retry:      c.SourceRetry,
	})
	for _, w := range c.workers {
		if err := w.conn.Send(encodeHello()); err != nil {
			return fmt.Errorf("dist: worker %d hello: %w", w.id, err)
		}
		msg, err := c.recvDirect(ctx, w)
		if err != nil {
			return fmt.Errorf("dist: worker %d handshake: %w", w.id, err)
		}
		if len(msg) == 0 || msg[0] != msgHelloAck {
			return protoErr("worker %d answered handshake with message type %d", w.id, msgType(msg))
		}
		if err := decodeHelloAck(msg); err != nil {
			return fmt.Errorf("dist: worker %d: %w", w.id, err)
		}
		if err := w.conn.Send(open); err != nil {
			return fmt.Errorf("dist: worker %d fitOpen: %w", w.id, err)
		}
		msg, err = c.recvDirect(ctx, w)
		if err != nil {
			return fmt.Errorf("dist: worker %d fitOpen: %w", w.id, err)
		}
		if len(msg) == 0 || msg[0] != msgAck {
			return protoErr("worker %d answered fitOpen with message type %d", w.id, msgType(msg))
		}
		a, err := decodeAck(msg)
		if err != nil {
			return fmt.Errorf("dist: worker %d: %w", w.id, err)
		}
		if !a.OK {
			return fmt.Errorf("dist: worker %d rejected fit: %s", w.id, a.Msg)
		}
	}
	c.opened = true
	for _, w := range c.workers {
		c.wg.Add(1)
		go c.reader(w)
	}
	return nil
}

// msgType safely extracts a message's type byte for error text.
func msgType(msg []byte) int {
	if len(msg) == 0 {
		return -1
	}
	return int(msg[0])
}

// reader is one worker's receive loop: frames decode and route to the
// shared event channel; transient faults retry in place on the shard
// schedule; the first permanent failure emits a death event and ends the
// loop. Exits when the coordinator closes.
func (c *Coordinator) reader(w *workerConn) {
	defer c.wg.Done()
	attempt := 1
	for {
		msg, err := w.conn.Recv()
		if err != nil {
			if frame.IsTransient(err) && attempt < c.TransportRetry.MaxAttempts {
				if serr := c.sleepClosed(c.TransportRetry.Delay(attempt)); serr != nil {
					return
				}
				attempt++
				c.transient.Add(1)
				continue
			}
			c.emit(event{worker: w.id, err: err})
			return
		}
		attempt = 1
		var decoded any
		switch msgType(msg) {
		case msgAck:
			decoded, err = decodeAck(msg)
		case msgPartial:
			decoded, err = decodePartial(msg)
		case msgPassDone:
			decoded, err = decodePassDone(msg)
		case msgPassErr:
			decoded, err = decodePassErr(msg)
		default:
			err = protoErr("unexpected message type %d from worker %d", msgType(msg), w.id)
		}
		if err != nil {
			c.emit(event{worker: w.id, err: err})
			return
		}
		if !c.emit(event{worker: w.id, msg: decoded}) {
			return
		}
	}
}

// emit routes one event unless the coordinator is closed.
func (c *Coordinator) emit(ev event) bool {
	select {
	case c.events <- ev:
		return true
	case <-c.closed:
		return false
	}
}

// sleepClosed waits d or until the coordinator closes.
func (c *Coordinator) sleepClosed(d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closed:
		return errors.New("dist: coordinator closed")
	}
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// next blocks for the next worker event or context cancellation.
func (c *Coordinator) next(ctx context.Context) (event, error) {
	select {
	case ev := <-c.events:
		return ev, nil
	case <-ctx.Done():
		return event{}, ctx.Err()
	}
}

// sendAsync ships a frame to a worker without blocking the event loop (a
// synchronous send could deadlock against a worker that is itself blocked
// sending partials). Failures surface as death events.
func (c *Coordinator) sendAsync(w *workerConn, msg []byte) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		w.send.Lock()
		err := w.conn.Send(msg)
		w.send.Unlock()
		if err != nil {
			c.emit(event{worker: w.id, err: fmt.Errorf("send: %w", err)})
		}
	}()
}

// SetLive implements shard.Executor: the epoch broadcasts to every live
// worker and all of them must acknowledge it before any pass runs against
// it.
func (c *Coordinator) SetLive(ctx context.Context, epoch int, nodes []shard.NodeSpec, live []string) error {
	msg := encodeSetLive(&setLive{Epoch: epoch, Nodes: nodes, Live: live})
	waiting := 0
	for _, w := range c.workers {
		if !w.alive {
			continue
		}
		c.sendAsync(w, msg)
		waiting++
	}
	if waiting == 0 {
		return errors.New("dist: no live workers")
	}
	for waiting > 0 {
		ev, err := c.next(ctx)
		if err != nil {
			return err
		}
		if ev.err != nil {
			c.workers[ev.worker].alive = false
			waiting--
			if c.Workers() == 0 {
				return fmt.Errorf("dist: all workers lost: %w", ev.err)
			}
			continue
		}
		a, ok := ev.msg.(*ack)
		if !ok {
			continue // stale pass traffic from an aborted fit; ignore
		}
		if !a.OK {
			return fmt.Errorf("dist: worker %d rejected live epoch %d: %s", ev.worker, epoch, a.Msg)
		}
		if a.Epoch != epoch {
			return protoErr("worker %d acknowledged epoch %d, want %d", ev.worker, a.Epoch, epoch)
		}
		waiting--
	}
	return nil
}

// passState tracks one pass's fold frontier.
type passState struct {
	pending  map[int]*shard.Partial
	nextFold int
	rows     int
	retries  int64
}

// RunPass implements shard.Executor. fold runs on the calling goroutine, in
// ascending partition order, exactly once per partition.
func (c *Coordinator) RunPass(ctx context.Context, spec *shard.PassSpec, fold func(*shard.Partial) error) (shard.PassResult, error) {
	var res shard.PassResult
	if !c.opened {
		return res, errors.New("dist: coordinator not opened")
	}
	passID := spec.Pass
	startTransient := c.transient.Load()

	// Assign residue classes across the live workers.
	live := c.liveWorkers()
	if len(live) == 0 {
		return res, errors.New("dist: no live workers")
	}
	for _, w := range c.workers {
		w.outstanding = 0
		w.assigns = w.assigns[:0]
	}
	for k, w := range live {
		a := assignment{Mod: len(live), Residue: k}
		w.assigns = append(w.assigns, a)
		w.outstanding++
		c.sendAsync(w, encodeRunPass(&runPass{PassID: passID, Assign: a, Spec: spec}))
	}

	st := &passState{pending: make(map[int]*shard.Partial)}
	for c.passActive() {
		ev, err := c.next(ctx)
		if err != nil {
			return res, err
		}
		if ev.err != nil {
			if err := c.workerLost(spec, passID, ev, st); err != nil {
				return res, err
			}
			continue
		}
		switch m := ev.msg.(type) {
		case *partialMsg:
			if m.PassID != passID {
				continue // stale partial from an aborted pass
			}
			if err := c.foldPartial(spec, &m.Partial, st, fold); err != nil {
				return res, err
			}
		case *passDone:
			if m.PassID != passID {
				continue
			}
			w := c.workers[ev.worker]
			if w.outstanding > 0 {
				w.outstanding--
				st.retries += m.Retries
			}
		case *passErr:
			if m.PassID != passID {
				continue
			}
			return res, &shard.PassError{
				Pass: spec.Pass, Chunk: m.Chunk, Attempts: max(m.Attempts, 1),
				Err: fmt.Errorf("dist: worker %d: %s", ev.worker, m.Msg),
			}
		case *ack:
			// Stale ack; nothing to do.
		}
	}
	if len(st.pending) > 0 {
		return res, protoErr("pass %d folded %d partitions with %d stranded beyond a gap", spec.Pass, st.nextFold, len(st.pending))
	}
	if c.chunks > 0 && st.nextFold != c.chunks {
		return res, protoErr("pass %d folded %d partitions, want %d", spec.Pass, st.nextFold, c.chunks)
	}
	if c.chunks == 0 {
		c.chunks = st.nextFold
	}
	res.Rows = st.rows
	res.Parts = st.nextFold
	res.Retries = st.retries + (c.transient.Load() - startTransient)
	return res, nil
}

// passActive reports whether any worker still owes pass results.
func (c *Coordinator) passActive() bool {
	for _, w := range c.workers {
		if w.alive && w.outstanding > 0 {
			return true
		}
	}
	return false
}

// liveWorkers returns the live workers in id order.
func (c *Coordinator) liveWorkers() []*workerConn {
	var out []*workerConn
	for _, w := range c.workers {
		if w.alive {
			out = append(out, w)
		}
	}
	return out
}

// foldPartial advances the fold frontier with one arrived partial:
// duplicates (below the frontier or already pending) drop, then every
// consecutively available partition folds in index order.
func (c *Coordinator) foldPartial(spec *shard.PassSpec, p *shard.Partial, st *passState, fold func(*shard.Partial) error) error {
	if p.Chunk < 0 || (c.chunks > 0 && p.Chunk >= c.chunks) {
		return protoErr("pass %d partial for partition %d outside [0,%d)", spec.Pass, p.Chunk, c.chunks)
	}
	if p.Chunk < st.nextFold {
		return nil // duplicate of an already-folded partition
	}
	if _, dup := st.pending[p.Chunk]; dup {
		return nil
	}
	st.pending[p.Chunk] = p
	for {
		q, ok := st.pending[st.nextFold]
		if !ok {
			return nil
		}
		delete(st.pending, st.nextFold)
		if err := fold(q); err != nil {
			return err
		}
		st.rows += q.Rows
		st.nextFold++
	}
}

// workerLost handles a worker's permanent failure mid-pass: partitions the
// dead worker still owed (not folded, not pending) reassign to the
// survivors in explicit lists. Reassignment needs the partition count —
// a death during the very first pass, before the source geometry is known,
// aborts the fit.
func (c *Coordinator) workerLost(spec *shard.PassSpec, passID int, ev event, st *passState) error {
	w := c.workers[ev.worker]
	wasAlive := w.alive
	w.alive = false
	if !wasAlive || w.outstanding == 0 {
		return nil // already dead, or had finished this pass: nothing owed
	}
	w.outstanding = 0
	missing := c.missingChunks(w, st)
	if len(missing) == 0 {
		return nil
	}
	survivors := c.liveWorkers()
	if len(survivors) == 0 {
		return &shard.PassError{
			Pass: spec.Pass, Chunk: st.nextFold, Attempts: c.TransportRetry.MaxAttempts,
			Err: fmt.Errorf("dist: all workers lost: %w", ev.err),
		}
	}
	if c.chunks == 0 {
		return &shard.PassError{
			Pass: spec.Pass, Chunk: st.nextFold, Attempts: 1,
			Err: fmt.Errorf("dist: worker %d lost before the partition count was known: %w", ev.worker, ev.err),
		}
	}
	shares := make([][]int, len(survivors))
	for i, idx := range missing {
		shares[i%len(survivors)] = append(shares[i%len(survivors)], idx)
	}
	for i, s := range survivors {
		if len(shares[i]) == 0 {
			continue
		}
		a := assignment{Explicit: shares[i]}
		s.assigns = append(s.assigns, a)
		s.outstanding++
		c.sendAsync(s, encodeRunPass(&runPass{PassID: passID, Assign: a, Spec: spec}))
	}
	return nil
}

// missingChunks lists the partitions a dead worker's assignments still owe:
// in any of its assignment sets, below the known partition count, and
// neither folded nor pending.
func (c *Coordinator) missingChunks(w *workerConn, st *passState) []int {
	var missing []int
	for idx := st.nextFold; idx < c.chunks; idx++ {
		if _, ok := st.pending[idx]; ok {
			continue
		}
		for _, a := range w.assigns {
			if a.has(idx) {
				missing = append(missing, idx)
				break
			}
		}
	}
	return missing
}

var _ shard.Executor = (*Coordinator)(nil)
