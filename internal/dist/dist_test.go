package dist

import (
	"context"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/frame"
	"repro/internal/shard"
)

// fingerprint reduces a fitted pipeline to the selected feature names in
// selection order — the string every differential in this file compares.
func fingerprint(p *core.Pipeline) string { return strings.Join(p.Output, "|") }

// taskCase is one task family of the differential matrix.
type taskCase struct {
	name    string
	task    core.Task
	target  datagen.TargetKind
	classes int
}

func taskCases() []taskCase {
	return []taskCase{
		{"binary", core.BinaryTask(), datagen.TargetBinary, 0},
		{"multiclass3", core.MulticlassTask(3), datagen.TargetMulticlass, 3},
		{"regression", core.RegressionTask(), datagen.TargetRegression, 0},
	}
}

// taskWorkload generates the benchkit-shaped synthetic dataset for a task
// family — the same planted signal the shard determinism pins fit.
func taskWorkload(t *testing.T, rows, dim int, tc taskCase) *frame.Frame {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "dist-test", Train: rows, Test: 64, Dim: dim,
		Interactions: dim / 3, SignalScale: 2.5, Seed: 11,
		Target: tc.target, Classes: tc.classes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Train
}

// writeSource persists a frame as the file-backed source a worker fleet
// opens by path. kind is SourceCSV or SourceColstore.
func writeSource(t *testing.T, train *frame.Frame, kind, chunkRows int) SourceSpec {
	t.Helper()
	dir := t.TempDir()
	switch kind {
	case SourceCSV:
		path := filepath.Join(dir, "train.csv")
		if err := train.WriteCSVFile(path); err != nil {
			t.Fatal(err)
		}
		return SourceSpec{Kind: SourceCSV, Path: path, Label: "label", ChunkRows: chunkRows}
	case SourceColstore:
		path := filepath.Join(dir, "train.col")
		if err := colstore.WriteFrame(path, train, colstore.WriterOptions{GroupRows: chunkRows}); err != nil {
			t.Fatal(err)
		}
		return SourceSpec{Kind: SourceColstore, Path: path}
	default:
		t.Fatalf("unknown source kind %d", kind)
		return SourceSpec{}
	}
}

// openLocal opens the coordinator's local handle on the source (schema
// only; rows stream on the workers).
func openLocal(t *testing.T, spec SourceSpec) frame.ChunkSource {
	t.Helper()
	if spec.Kind == SourceColstore {
		src, err := colstore.OpenSource(spec.Path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { src.Close() })
		return src
	}
	src, err := frame.OpenCSVChunks(spec.Path, spec.Label, spec.ChunkRows)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	return src
}

// fleet is a test worker fleet: the coordinator-side connections plus a
// drain hook that must unwind cleanly after the coordinator closes.
type fleet struct {
	conns []Conn
	wait  func()
}

// pipeFleet starts n in-process workers over net.Pipe connections.
func pipeFleet(t *testing.T, ctx context.Context, n int) *fleet {
	t.Helper()
	f := &fleet{}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		coordEnd, workerEnd := Pipe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = ServeConn(ctx, workerEnd)
		}()
		f.conns = append(f.conns, coordEnd)
	}
	f.wait = wg.Wait
	return f
}

// tcpFleet starts one loopback TCP worker server and dials n connections —
// n worker sessions sharing a process, framed over a real network stack.
func tcpFleet(t *testing.T, ctx context.Context, n int) *fleet {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(sctx)
	}()
	f := &fleet{}
	for i := 0; i < n; i++ {
		nc, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		f.conns = append(f.conns, NewConn(nc))
	}
	f.wait = func() {
		cancel()
		wg.Wait()
	}
	return f
}

// distFit runs one distributed fit over the given coordinator connections
// and returns the pipeline and stats.
func distFit(t *testing.T, ctx context.Context, spec SourceSpec, conns []Conn, cfg core.Config) (*core.Pipeline, *shard.Stats) {
	t.Helper()
	coord := NewCoordinator(spec, conns...)
	defer coord.Close()
	src := openLocal(t, spec)
	p, _, st, err := shard.Fit(ctx, src, shard.Config{Core: cfg, Exec: coord})
	if err != nil {
		t.Fatalf("distributed fit: %v", err)
	}
	return p, st
}

// localFingerprints returns the shard.Fit and core.Fit fingerprints for a
// workload — the two references every distributed run must match exactly.
func localFingerprints(t *testing.T, train *frame.Frame, cfg core.Config, chunkRows int) (shardFP, coreFP string) {
	t.Helper()
	p, _, _, err := shard.Fit(context.Background(), frame.NewFrameChunks(train, chunkRows), shard.Config{Core: cfg})
	if err != nil {
		t.Fatalf("local sharded fit: %v", err)
	}
	shardFP = fingerprint(p)
	eng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := eng.Fit(train)
	if err != nil {
		t.Fatalf("in-memory fit: %v", err)
	}
	coreFP = fingerprint(cp)
	return shardFP, coreFP
}

// TestDistributedFitMatchesLocal is the subsystem's acceptance pin: for
// every task family, transport, and worker count, a distributed fit selects
// features bit-identical to both the local sharded engine and the in-memory
// engine on the same rows. Runs under -race in CI.
func TestDistributedFitMatchesLocal(t *testing.T) {
	const rows, dim, parts = 2000, 8, 4
	chunkRows := (rows + parts - 1) / parts
	for _, tc := range taskCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			train := taskWorkload(t, rows, dim, tc)
			cfg := core.DefaultConfig()
			cfg.Task = tc.task
			cfg.Seed = 1
			shardFP, coreFP := localFingerprints(t, train, cfg, chunkRows)
			if shardFP != coreFP {
				t.Fatalf("references disagree before any distribution:\nshard: %s\ncore:  %s", shardFP, coreFP)
			}
			// CSV exercises the workers' CSV open path in one family;
			// colstore covers the rest (and the binary decode path).
			kind := SourceColstore
			if tc.name == "binary" {
				kind = SourceCSV
			}
			spec := writeSource(t, train, kind, chunkRows)
			for _, transport := range []string{"pipe", "tcp"} {
				for _, workers := range []int{1, 2, 4} {
					ctx, cancel := context.WithCancel(context.Background())
					var fl *fleet
					if transport == "pipe" {
						fl = pipeFleet(t, ctx, workers)
					} else {
						fl = tcpFleet(t, ctx, workers)
					}
					p, st := distFit(t, ctx, spec, fl.conns, cfg)
					cancel()
					fl.wait()
					if fp := fingerprint(p); fp != shardFP {
						t.Fatalf("%s workers=%d diverged from local fit:\n got: %s\nwant: %s",
							transport, workers, fp, shardFP)
					}
					if st.Partitions != parts {
						t.Fatalf("%s workers=%d: fit saw %d partitions, want %d",
							transport, workers, st.Partitions, parts)
					}
				}
			}
		})
	}
}
