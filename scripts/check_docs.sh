#!/usr/bin/env bash
# check_docs.sh — the docs half of CI: documentation rot fails the build
# instead of waiting for a reviewer to notice.
#
#  1. Markdown link check: every relative link in README.md, docs/ and
#     examples/ must resolve to an existing file or directory (anchors and
#     external URLs are skipped).
#  2. Package comment check: every internal/* package (plus the root
#     package) must carry a godoc package comment ("// Package <name> ...")
#     in at least one of its .go files.
#
# Run from the repository root: bash scripts/check_docs.sh
set -euo pipefail

fail=0

# --- 1. markdown link check -------------------------------------------------
mdfiles=$(find . -path ./.git -prune -o -name '*.md' -print | grep -Ev '^\./(\.git)' | sort)
for md in $mdfiles; do
  dir=$(dirname "$md")
  # Extract markdown link targets: [text](target)
  targets=$(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//' || true)
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
      ../../*) continue ;; # escapes the repo: a github.com-relative URL (CI badge)
    esac
    # Strip anchors and angle brackets.
    path="${target%%#*}"
    path="${path#<}"
    path="${path%>}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "broken link in $md: ($target)" >&2
      fail=1
    fi
  done <<EOF
$targets
EOF
done

# --- 2. package comment check ----------------------------------------------
for d in internal/*/; do
  pkg=$(basename "$d")
  if ! grep -qE "^// Package ${pkg}( |$)" "$d"*.go 2>/dev/null; then
    echo "package $d has no package comment (want \"// Package ${pkg} ...\" in a .go file, conventionally doc.go)" >&2
    fail=1
  fi
done
if ! grep -qE '^// Package safe( |$)' ./*.go; then
  echo "root package has no package comment" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "docs check failed" >&2
  exit 1
fi
echo "docs check ok: links resolve, every package is documented"
