#!/usr/bin/env bash
# check_api.sh — the API-surface half of CI's lint job: the exported
# surface of the root `safe` package is a reviewed artefact, snapshotted in
# docs/api_surface.txt. Any change to exported names or signatures that is
# not accompanied by a snapshot update fails the build, so public-API drift
# is always a deliberate, visible diff instead of an accident.
#
#   bash scripts/check_api.sh            # verify (CI mode)
#   bash scripts/check_api.sh -update    # regenerate the snapshot
#
# The snapshot is `go doc -all .` normalised down to declarations: doc
# comments (4-space-indented prose and the package header) are stripped so
# wording edits never trip the gate — only names, signatures, fields and
# constants do.
set -euo pipefail

snapshot="docs/api_surface.txt"

normalize() {
  go doc -all . | awk '
    /^(CONSTANTS|VARIABLES|FUNCTIONS|TYPES)$/ { in_body = 1; next }
    !in_body { next }   # package header prose
    /^    /  { next }   # doc-comment prose
    /^$/     { next }
    { print }
  '
}

if [ "${1:-}" = "-update" ]; then
  normalize > "$snapshot"
  echo "api surface snapshot updated: $snapshot"
  exit 0
fi

if [ ! -f "$snapshot" ]; then
  echo "missing $snapshot — run: bash scripts/check_api.sh -update" >&2
  exit 1
fi

if ! diff -u "$snapshot" <(normalize); then
  cat >&2 <<'EOF'

api surface check failed: the exported API of the root package differs
from the reviewed snapshot in docs/api_surface.txt. If the change is
intentional, regenerate the snapshot and commit it alongside the code:

    bash scripts/check_api.sh -update

EOF
  exit 1
fi
echo "api surface ok: exported API matches docs/api_surface.txt"
