package safe_test

import (
	"strings"
	"testing"

	"repro"
)

func quickDataset(t *testing.T) *safe.Dataset {
	t.Helper()
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "api-test", Train: 2000, Test: 600, Dim: 8,
		Informative: 1, Interactions: 3, SignalScale: 2.5, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPublicAPIEndToEnd(t *testing.T) {
	ds := quickDataset(t)
	eng, err := safe.New(safe.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pipeline, report, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	if report.Total <= 0 {
		t.Error("report has no elapsed time")
	}
	trNew, err := pipeline.Transform(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	teNew, err := pipeline.Transform(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	model, err := safe.TrainClassifier("XGB", trNew, 1)
	if err != nil {
		t.Fatal(err)
	}
	auc := safe.AUC(model.Predict(teNew), teNew.Label)
	if auc < 0.55 {
		t.Errorf("engineered-features AUC = %v, want well above chance", auc)
	}
}

func TestClassifierNamesCoverTableIII(t *testing.T) {
	names := safe.ClassifierNames()
	want := []string{"AB", "DT", "ET", "kNN", "LR", "MLP", "RF", "SVM", "XGB"}
	if len(names) != len(want) {
		t.Fatalf("got %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestAllNineClassifiersTrain(t *testing.T) {
	ds := quickDataset(t)
	for _, name := range safe.ClassifierNames() {
		model, err := safe.TrainClassifier(name, ds.Train, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		scores := model.Predict(ds.Test)
		if len(scores) != ds.Test.NumRows() {
			t.Fatalf("%s: %d scores for %d rows", name, len(scores), ds.Test.NumRows())
		}
		auc := safe.AUC(scores, ds.Test.Label)
		if auc < 0.5 {
			t.Errorf("%s: AUC = %v below chance (direction bug?)", name, auc)
		}
	}
}

func TestTrainClassifierUnknown(t *testing.T) {
	ds := quickDataset(t)
	if _, err := safe.TrainClassifier("GPT", ds.Train, 1); err == nil {
		t.Error("unknown classifier accepted")
	}
}

func TestReadCSVPublic(t *testing.T) {
	f, err := safe.ReadCSV(strings.NewReader("a,b,label\n1,2,0\n3,4,1\n"), "label")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 2 || f.NumCols() != 2 || f.Label[1] != 1 {
		t.Errorf("parsed frame wrong: %+v", f)
	}
}

func TestSelectPublic(t *testing.T) {
	ds := quickDataset(t)
	cols := make([][]float64, ds.Train.NumCols())
	for j := range cols {
		cols[j] = ds.Train.Columns[j].Values
	}
	cfg := safe.DefaultSelectionConfig()
	cfg.MaxFeatures = 3
	sel, err := safe.Select(cols, ds.Train.Label, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) > 3 {
		t.Errorf("selected %d > 3", len(sel))
	}
}

func TestBenchmarkSpecsExposed(t *testing.T) {
	if got := len(safe.BenchmarkDatasetSpecs(1)); got != 12 {
		t.Errorf("benchmark specs = %d, want 12", got)
	}
	if got := len(safe.BusinessDatasetSpecs(0.005)); got != 3 {
		t.Errorf("business specs = %d, want 3", got)
	}
	if safe.FraudDatasetSpec().PosRate != 0.02 {
		t.Error("fraud spec not imbalanced")
	}
}

func TestCustomOperatorThroughPublicAPI(t *testing.T) {
	ds := quickDataset(t)
	reg := safe.NewRegistry()
	cfg := safe.DefaultConfig()
	cfg.Registry = reg
	cfg.Operators = []string{"mul", "div", "groupby_avg", "log"}
	eng, err := safe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pipeline, _, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	if pipeline.NumFeatures() == 0 {
		t.Error("empty pipeline")
	}
}
