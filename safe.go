// Package safe is the public API of this reproduction of "SAFE: Scalable
// Automatic Feature Engineering Framework for Industrial Tasks" (Shi et al.,
// ICDE 2020). SAFE learns a feature generation function Ψ from a labelled
// training set in two stages per iteration: XGBoost-path-guided feature
// generation, then a three-stage selection pipeline (Information Value
// filter, Pearson redundancy removal, XGBoost gain ranking).
//
// Quickstart — one composable entrypoint:
//
//	res, _ := safe.Fit(ctx, safe.FromCSVFile("train.csv", "label"))
//	transformed, _ := res.Pipeline.Transform(train)      // batch
//	features, _ := res.Pipeline.TransformRow(rawRow)     // real-time inference
//
// Fit composes from a Source and functional options; the engine (in-memory
// vs sharded out-of-core) is picked from the source and options:
//
//	res, _ := safe.Fit(ctx, safe.FromCSVFile("huge.csv", "label"),
//	    safe.WithTask(safe.RegressionTask()),
//	    safe.WithSharding(100_000),              // stream in 100k-row chunks
//	    safe.WithEvents(func(ev safe.FitEvent) { // live progress
//	        log.Printf("%s %s", ev.Kind, ev.Stage)
//	    }))
//
// Cancellation and deadlines propagate through every layer: cancel ctx and
// the fit aborts promptly with ctx.Err(), leaking nothing. NewPlan
// validates the same source+options into an inspectable, reusable Plan.
//
// Every generated feature carries an interpretable formula (e.g.
// "(x3 * x7)"), and new operators can be plugged in through a Registry.
// See docs/api.md for the full Plan/options model and the migration table
// from the deprecated Engineer/FitSharded entry points.
package safe

import (
	"context"
	"io"

	"repro/internal/clf"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/operators"
	"repro/internal/shard"
)

// Config configures the SAFE engineer; see core.Config for field docs.
type Config = core.Config

// Pipeline is the learned feature generation function Ψ.
type Pipeline = core.Pipeline

// Report summarises a Fit run per iteration.
type Report = core.Report

// IterationReport records stage sizes within one iteration.
type IterationReport = core.IterationReport

// SelectionConfig configures the standalone selection pipeline.
type SelectionConfig = core.SelectionConfig

// Frame is the columnar dataset type consumed by SAFE.
type Frame = frame.Frame

// Column is one named feature column of a Frame.
type Column = frame.Column

// Registry maps operator names to constructors; custom domain operators
// register here.
type Registry = operators.Registry

// Operator generates one feature from one or more input features.
type Operator = operators.Operator

// Applier is a fitted operator application.
type Applier = operators.Applier

// Arity is the number of inputs an operator consumes.
type Arity = operators.Arity

// Operator arities.
const (
	Unary   = operators.Unary
	Binary  = operators.Binary
	Ternary = operators.Ternary
)

// Task identifies the prediction task a fit engineers features for: binary
// classification (the default), K-class classification, or regression. Set
// Config.Task to steer the miner/ranker objectives and the selection
// criterion; the learned Pipeline records its task and round-trips it
// through Save/Load.
type Task = core.Task

// TaskKind enumerates the task families.
type TaskKind = core.TaskKind

// Task kinds.
const (
	TaskBinary     = core.TaskBinary
	TaskMulticlass = core.TaskMulticlass
	TaskRegression = core.TaskRegression
)

// BinaryTask returns the paper's binary classification task.
func BinaryTask() Task { return core.BinaryTask() }

// MulticlassTask returns a K-class classification task (labels are class
// indices 0..k-1).
func MulticlassTask(k int) Task { return core.MulticlassTask(k) }

// RegressionTask returns the real-valued prediction task.
func RegressionTask() Task { return core.RegressionTask() }

// ParseTask parses "binary", "multiclass:K", or "regression" — the format
// the CLI -task flags accept and Task.String produces.
func ParseTask(s string) (Task, error) { return core.ParseTask(s) }

// Engineer runs the SAFE algorithm.
//
// Deprecated: Engineer is the pre-Plan entry point, kept as a thin shim
// over the composable path — New + Engineer.Fit behaves exactly like
// Fit(ctx, FromFrame(train), WithConfig(cfg)) and selects identical
// features. New code should call Fit (or NewPlan) directly, which adds
// context cancellation, engine selection, and the progress-event stream.
type Engineer struct {
	cfg Config
}

// DefaultConfig returns the paper's experimental configuration: operators
// {+,−,×,÷}, α=0.1, β=10, θ=0.8, one iteration, 2M output budget.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultSelectionConfig returns the paper's selection thresholds.
func DefaultSelectionConfig() SelectionConfig { return core.DefaultSelectionConfig() }

// New validates the configuration and constructs an Engineer.
//
// Deprecated: see Engineer; call Fit with options instead.
func New(cfg Config) (*Engineer, error) {
	norm, err := core.NormalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	return &Engineer{cfg: norm}, nil
}

// Fit learns Ψ from a labelled training frame.
//
// Deprecated: see Engineer; this shim routes through the composable Fit
// path with a background context.
func (e *Engineer) Fit(train *Frame) (*Pipeline, *Report, error) {
	res, err := Fit(context.Background(), FromFrame(train), WithConfig(e.cfg))
	if err != nil {
		return nil, nil, err
	}
	return res.Pipeline, res.Report, nil
}

// NewRegistry returns an operator registry pre-populated with the paper's
// catalogue (arithmetic, logical, transforms, normalisation, discretisation,
// GroupByThen*, ridge, conditional).
func NewRegistry() *Registry { return operators.NewRegistry() }

// LoadPipeline reads a pipeline saved with Pipeline.Save, reconstructing
// every fitted operator. This is the deployment path: train offline, save
// Ψ as JSON, load in the serving process and call TransformRow per request.
func LoadPipeline(r io.Reader) (*Pipeline, error) { return core.LoadPipeline(r) }

// LoadPipelineFile reads a pipeline from a JSON file.
func LoadPipelineFile(path string) (*Pipeline, error) { return core.LoadPipelineFile(path) }

// Select runs SAFE's three-stage feature selection over candidate columns,
// returning selected indices best-first.
func Select(cols [][]float64, labels []float64, cfg SelectionConfig) ([]int, error) {
	return core.Select(cols, labels, cfg)
}

// ChunkSource yields a labelled dataset as re-iterable row chunks — the
// substrate of the sharded out-of-core fit path.
type ChunkSource = frame.ChunkSource

// Chunk is one row-range of a chunked dataset, as yielded by a ChunkSource.
type Chunk = frame.Chunk

// ShardConfig configures FitSharded; see shard.Config.
type ShardConfig = shard.Config

// ShardStats reports how a sharded fit consumed its source.
type ShardStats = shard.Stats

// RetryPolicy bounds how the sharded engine retries transient chunk-read
// errors; see WithRetry. The zero value disables retrying.
type RetryPolicy = shard.RetryPolicy

// DefaultRetryPolicy returns the standard transient-fault policy: 4 total
// read attempts per chunk with 5ms → 250ms capped exponential backoff.
func DefaultRetryPolicy() RetryPolicy { return shard.DefaultRetryPolicy() }

// PassError positions a sharded fit's chunk-read failure: the streaming
// pass, the chunk ordinal within it, and the read attempts made before
// giving up. errors.As reaches it on any failed sharded read, and Unwrap
// continues to the source's own error — e.g. a ColumnFormatError or
// ColumnChecksumError for a corrupted column file.
type PassError = shard.PassError

// Transienter marks an error as retryable for WithRetry: custom
// ChunkSource implementations return errors implementing it (Transient()
// true) to opt individual read failures into the retry policy. Errors
// that do not implement it are permanent and abort the fit.
type Transienter = frame.Transienter

// ColumnFormatError is a colstore file's structural decode failure,
// positioned by section, row group, and column. It is permanent: corrupted
// column files abort a fit with a typed error, never a wrong answer.
type ColumnFormatError = colstore.FormatError

// ColumnChecksumError is a colstore block or footer CRC-32C mismatch —
// the typed error a torn or bit-flipped column file surfaces as.
type ColumnChecksumError = colstore.ChecksumError

// DefaultShardConfig returns the paper's configuration for the sharded
// engine with default sketch settings.
func DefaultShardConfig() ShardConfig { return shard.DefaultConfig() }

// FitSharded learns Ψ out-of-core from a chunked source whose partitions
// never coexist in memory: statistics are computed as mergeable sketches
// per partition and merged, and the XGBoost stages train on a resident
// binned (1 byte/value) matrix. With default settings the selected features
// are identical to the in-memory engine on the same rows; see
// docs/sharding.md.
//
// Deprecated: FitSharded is kept as a thin shim over the composable path —
// it behaves exactly like Fit(ctx, FromChunks(src), WithConfig(cfg.Core),
// WithSketch(cfg.SketchSize, cfg.ApproxCuts)) and selects identical
// features. New code should call Fit, which adds context cancellation and
// the progress-event stream.
func FitSharded(src ChunkSource, cfg ShardConfig) (*Pipeline, *Report, *ShardStats, error) {
	res, err := Fit(context.Background(), FromChunks(src),
		WithConfig(cfg.Core), WithSketch(cfg.SketchSize, cfg.ApproxCuts))
	if err != nil {
		return nil, nil, nil, err
	}
	return res.Pipeline, res.Report, res.Shard, nil
}

// OpenCSVChunks opens a CSV file as a streaming chunk source for FitSharded:
// files far larger than memory fit out-of-core. labelCol may be "";
// chunkRows <= 0 picks a default. Close it when done.
func OpenCSVChunks(path, labelCol string, chunkRows int) (*frame.CSVChunks, error) {
	return frame.OpenCSVChunks(path, labelCol, chunkRows)
}

// NewFrameChunks wraps an in-memory frame as a chunk source of chunkRows-row
// partitions, e.g. to compare sharded and in-memory fits.
func NewFrameChunks(f *Frame, chunkRows int) *frame.FrameChunks {
	return frame.NewFrameChunks(f, chunkRows)
}

// ReadCSV parses a CSV stream with a header row; labelCol may be "".
func ReadCSV(r io.Reader, labelCol string) (*Frame, error) {
	return frame.ReadCSV(r, labelCol)
}

// ReadCSVFile parses a CSV file; labelCol may be "".
func ReadCSVFile(path, labelCol string) (*Frame, error) {
	return frame.ReadCSVFile(path, labelCol)
}

// Classifier scores frames with positive-class probabilities. The nine
// evaluation classifiers of the paper's Table III are available through
// TrainClassifier.
type Classifier struct {
	model clf.Model
	names []string
}

// ClassifierNames lists the available classifier keys (AB, DT, ET, kNN, LR,
// MLP, RF, SVM, XGB).
func ClassifierNames() []string { return clf.Names() }

// TrainClassifier fits one of the nine evaluation classifiers on a labelled
// frame with default parameters.
func TrainClassifier(name string, train *Frame, seed int64) (*Classifier, error) {
	cols := colsOf(train)
	model, err := clf.Train(name, cols, train.Label, seed)
	if err != nil {
		return nil, err
	}
	return &Classifier{model: model, names: train.Names()}, nil
}

// Predict scores a frame (columns are matched positionally; use the same
// pipeline output ordering as at training time).
func (c *Classifier) Predict(f *Frame) []float64 {
	return c.model.Predict(colsOf(f))
}

// AUC computes the area under the ROC curve of scores against binary labels.
func AUC(scores, labels []float64) float64 { return metrics.AUC(scores, labels) }

// Accuracy computes thresholded accuracy at 0.5.
func Accuracy(scores, labels []float64) float64 { return metrics.Accuracy(scores, labels) }

// LogLoss computes mean negative log-likelihood.
func LogLoss(scores, labels []float64) float64 { return metrics.LogLoss(scores, labels) }

// KS computes the Kolmogorov-Smirnov statistic (max |TPR−FPR|), the standard
// discrimination metric in financial risk modelling.
func KS(scores, labels []float64) float64 { return metrics.KS(scores, labels) }

// PRAUC computes the area under the precision-recall curve — often more
// informative than ROC AUC on heavily imbalanced fraud data.
func PRAUC(scores, labels []float64) float64 { return metrics.PRAUC(scores, labels) }

// RMSE computes the root mean squared error of predictions against a
// continuous target (the regression-task evaluation metric).
func RMSE(pred, target []float64) float64 { return metrics.RMSE(pred, target) }

// ClassAccuracy computes exact-match accuracy of predicted class indices
// against class-index labels (the multiclass-task evaluation metric).
func ClassAccuracy(pred, labels []float64) float64 { return metrics.ClassAccuracy(pred, labels) }

func colsOf(f *Frame) [][]float64 {
	cols := make([][]float64, f.NumCols())
	for j := range cols {
		cols[j] = f.Columns[j].Values
	}
	return cols
}
