//go:build race

package safe_test

// raceEnabled gates the minutes-long 100k×50 equivalence pin off under the
// race detector; the smaller always-on variants cover the same code.
const raceEnabled = true
