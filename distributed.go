package safe

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/dist"
	"repro/internal/shard"
)

// WithDistributed delegates the sharded engine's per-partition pass compute
// to worker processes (safe-worker) at the given TCP addresses, over the
// internal/dist wire protocol. The coordinator keeps the selection loop;
// workers stream the dataset themselves and ship per-partition partials,
// which fold in partition-index order — so a distributed fit selects
// features bit-identical to a local sharded or in-memory fit, for any
// worker count.
//
// Requires a file-backed source every worker can open by path (FromCSVFile
// or FromColumnFile on shared storage) and implies the sharded engine.
// WithRetry applies on the workers' own chunk reads; transient transport
// faults retry on the same schedule, and a worker lost mid-fit hands its
// remaining partitions to the survivors.
func WithDistributed(addrs ...string) Option {
	return func(o *planOpts) error {
		if len(addrs) == 0 {
			return errors.New("safe: WithDistributed requires at least one worker address")
		}
		o.distAddrs = append([]string(nil), addrs...)
		o.sharded = true
		return nil
	}
}

// distSource maps the plan's file-backed source to the spec workers open.
func (p *Plan) distSource() (dist.SourceSpec, error) {
	switch s := p.src.(type) {
	case csvSource:
		return dist.SourceSpec{Kind: dist.SourceCSV, Path: s.path, Label: s.label, ChunkRows: p.chunkRows}, nil
	case colFileSource:
		return dist.SourceSpec{Kind: dist.SourceColstore, Path: s.path}, nil
	default:
		return dist.SourceSpec{}, errors.New("safe: WithDistributed requires a file-backed source (FromCSVFile or FromColumnFile)")
	}
}

// fitDistributed runs the plan with pass compute delegated to the worker
// fleet: dial every worker, hand the connections to a dist.Coordinator, and
// run the sharded fit loop with the coordinator as its pass executor. The
// local source handle supplies only the schema; all row streaming happens
// on the workers.
func (p *Plan) fitDistributed(ctx context.Context) (*Result, error) {
	spec, err := p.distSource()
	if err != nil {
		return nil, err
	}
	conns := make([]dist.Conn, 0, len(p.distAddrs))
	closeConns := func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}
	for _, addr := range p.distAddrs {
		nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			closeConns()
			return nil, fmt.Errorf("safe: dial worker %s: %w", addr, err)
		}
		conns = append(conns, dist.NewConn(nc))
	}
	coord := dist.NewCoordinator(spec, conns...)
	coord.SourceRetry = p.shardCfg.Retry
	defer coord.Close()

	src, err := p.src.open(p)
	if err != nil {
		return nil, err
	}
	if src.close != nil {
		defer src.close() //nolint:errcheck // read-only source teardown
	}
	cfg := p.shardCfg
	cfg.Exec = coord
	pipeline, report, stats, err := shard.Fit(ctx, src.chunks, cfg)
	if err != nil {
		return nil, err
	}
	return &Result{Pipeline: pipeline, Report: report, Shard: stats}, nil
}
