// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section V) at reduced scale, plus micro-benchmarks of the hot paths. Each
// BenchmarkTableN/BenchmarkFigN corresponds to one artefact of the paper;
// run `go run ./cmd/safe-bench -experiment all -scale 1 -repeats 10` for
// paper-scale reproduction (hours).
package safe_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/internal/benchkit"
	"repro/internal/experiments"
	"repro/internal/gbdt"
	"repro/internal/serve"
)

// benchOptions returns a configuration small enough for `go test -bench=.`
// while still exercising every code path of the corresponding experiment.
func benchOptions() experiments.Options {
	return experiments.Options{
		Scale:         0.03,
		BusinessScale: 0.002,
		Repeats:       1,
		Datasets:      []string{"banknote", "magic"},
		Classifiers:   []string{"LR", "XGB"},
		Seed:          1,
	}
}

func BenchmarkTable3ClassificationPerformance(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3(opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5ExecutionTime(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable5(opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6FeatureStability(b *testing.B) {
	opts := benchOptions()
	opts.Methods = []experiments.Method{experiments.RAND, experiments.IMP, experiments.SAFE}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable6(opts, 3, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8BusinessDatasets(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable8(opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3FeatureImportance(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig3(opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Iterations(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig4(opts, 2, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchSpaceReduction(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSearchSpace(opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssumptionsPathProvenance(b *testing.B) {
	opts := benchOptions()
	opts.Datasets = []string{"magic"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAssumptions(opts, 5, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- micro-benchmarks of the core pipeline ----------

func benchDataset(b *testing.B, rows, dim int) *safe.Dataset {
	b.Helper()
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "bench", Train: rows, Test: rows / 4, Dim: dim,
		Interactions: dim / 3, SignalScale: 2.5, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func BenchmarkSAFEFit(b *testing.B) {
	ds := benchDataset(b, 2000, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := safe.New(safe.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := eng.Fit(ds.Train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSAFESelectionOnly(b *testing.B) {
	ds := benchDataset(b, 2000, 20)
	cols := make([][]float64, ds.Train.NumCols())
	for j := range cols {
		cols[j] = ds.Train.Columns[j].Values
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := safe.Select(cols, ds.Train.Label, safe.DefaultSelectionConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectionAblation quantifies the design choices of the selection
// pipeline (DESIGN.md §5): full pipeline vs skipping the IV filter vs
// skipping the Pearson dedup.
func BenchmarkSelectionAblation(b *testing.B) {
	ds := benchDataset(b, 2000, 20)
	cols := make([][]float64, ds.Train.NumCols())
	for j := range cols {
		cols[j] = ds.Train.Columns[j].Values
	}
	cases := []struct {
		name                string
		skipIV, skipPearson bool
	}{
		{"full", false, false},
		{"no-iv", true, false},
		{"no-pearson", false, true},
		{"rank-only", true, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := safe.DefaultSelectionConfig()
			cfg.SkipIV = c.skipIV
			cfg.SkipPearson = c.skipPearson
			for i := 0; i < b.N; i++ {
				if _, err := safe.Select(cols, ds.Train.Label, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPipelineTransformRow(b *testing.B) {
	ds := benchDataset(b, 2000, 12)
	eng, err := safe.New(safe.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pipeline, _, err := eng.Fit(ds.Train)
	if err != nil {
		b.Fatal(err)
	}
	row := ds.Test.Row(0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.TransformRow(row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineTransformBatch(b *testing.B) {
	ds := benchDataset(b, 2000, 12)
	eng, err := safe.New(safe.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pipeline, _, err := eng.Fit(ds.Train)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Transform(ds.Test); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineTransformRowsBatchedVsLoop quantifies the batching win:
// the same 256 rows through TransformBatch (one columnar pass) vs a
// TransformRow loop. Both report rows/sec.
func BenchmarkPipelineTransformRowsBatchedVsLoop(b *testing.B) {
	ds := benchDataset(b, 2000, 12)
	eng, err := safe.New(safe.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pipeline, _, err := eng.Fit(ds.Train)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 256
	rows := make([][]float64, batch)
	for i := range rows {
		rows[i] = ds.Test.Row(i%ds.Test.NumRows(), nil)
	}
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pipeline.TransformBatch(rows); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("row-at-a-time", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, row := range rows {
				if _, err := pipeline.TransformRow(row); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkServeBatchedPredict measures end-to-end serving throughput:
// batched /predict over HTTP, including JSON codec, registry resolution,
// the columnar transform, and GBDT scoring. Reported in rows/sec.
func BenchmarkServeBatchedPredict(b *testing.B) {
	ds := benchDataset(b, 2000, 12)
	eng, err := safe.New(safe.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pipeline, _, err := eng.Fit(ds.Train)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := pipeline.Transform(ds.Train)
	if err != nil {
		b.Fatal(err)
	}
	cols := make([][]float64, tr.NumCols())
	for j := range cols {
		cols[j] = tr.Columns[j].Values
	}
	cfg := gbdt.DefaultConfig()
	cfg.NumTrees = 30
	model, err := gbdt.Train(cols, tr.Label, tr.Names(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	reg := serve.NewRegistry()
	if err := reg.Register("bench", "v1", pipeline, model); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(serve.NewServer(reg, serve.Options{}))
	defer srv.Close()

	const batch = 128
	rows := make([][]float64, batch)
	for i := range rows {
		rows[i] = ds.Test.Row(i%ds.Test.NumRows(), nil)
	}
	body, err := json.Marshal(serve.BatchRequest{Rows: rows})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkClassifierXGB(b *testing.B) {
	ds := benchDataset(b, 2000, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := safe.TrainClassifier("XGB", ds.Train, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitWorkload runs the quick cells of the benchkit workload matrix
// as standard Go benchmarks, so `go test -bench FitWorkload` measures exactly
// what `safe-bench -experiment fit -quick` (and the CI bench-smoke gate)
// measures. Throughput is reported as rows/s to match BENCH_fit.json.
func BenchmarkFitWorkload(b *testing.B) {
	for _, cell := range benchkit.QuickFitMatrix() {
		b.Run(cell.Name, func(b *testing.B) {
			ds, err := benchkit.Dataset(cell)
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchkit.FitConfig(cell.Iterations, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := safe.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := eng.Fit(ds.Train); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cell.Rows*cell.Iterations*b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
