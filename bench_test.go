// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section V) at reduced scale, plus micro-benchmarks of the hot paths. Each
// BenchmarkTableN/BenchmarkFigN corresponds to one artefact of the paper;
// run `go run ./cmd/safe-bench -experiment all -scale 1 -repeats 10` for
// paper-scale reproduction (hours).
package safe_test

import (
	"io"
	"testing"

	"repro"
	"repro/internal/experiments"
)

// benchOptions returns a configuration small enough for `go test -bench=.`
// while still exercising every code path of the corresponding experiment.
func benchOptions() experiments.Options {
	return experiments.Options{
		Scale:         0.03,
		BusinessScale: 0.002,
		Repeats:       1,
		Datasets:      []string{"banknote", "magic"},
		Classifiers:   []string{"LR", "XGB"},
		Seed:          1,
	}
}

func BenchmarkTable3ClassificationPerformance(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3(opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5ExecutionTime(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable5(opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6FeatureStability(b *testing.B) {
	opts := benchOptions()
	opts.Methods = []experiments.Method{experiments.RAND, experiments.IMP, experiments.SAFE}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable6(opts, 3, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8BusinessDatasets(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable8(opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3FeatureImportance(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig3(opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Iterations(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig4(opts, 2, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchSpaceReduction(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSearchSpace(opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssumptionsPathProvenance(b *testing.B) {
	opts := benchOptions()
	opts.Datasets = []string{"magic"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAssumptions(opts, 5, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- micro-benchmarks of the core pipeline ----------

func benchDataset(b *testing.B, rows, dim int) *safe.Dataset {
	b.Helper()
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "bench", Train: rows, Test: rows / 4, Dim: dim,
		Interactions: dim / 3, SignalScale: 2.5, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func BenchmarkSAFEFit(b *testing.B) {
	ds := benchDataset(b, 2000, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := safe.New(safe.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := eng.Fit(ds.Train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSAFESelectionOnly(b *testing.B) {
	ds := benchDataset(b, 2000, 20)
	cols := make([][]float64, ds.Train.NumCols())
	for j := range cols {
		cols[j] = ds.Train.Columns[j].Values
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := safe.Select(cols, ds.Train.Label, safe.DefaultSelectionConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectionAblation quantifies the design choices of the selection
// pipeline (DESIGN.md §5): full pipeline vs skipping the IV filter vs
// skipping the Pearson dedup.
func BenchmarkSelectionAblation(b *testing.B) {
	ds := benchDataset(b, 2000, 20)
	cols := make([][]float64, ds.Train.NumCols())
	for j := range cols {
		cols[j] = ds.Train.Columns[j].Values
	}
	cases := []struct {
		name                string
		skipIV, skipPearson bool
	}{
		{"full", false, false},
		{"no-iv", true, false},
		{"no-pearson", false, true},
		{"rank-only", true, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := safe.DefaultSelectionConfig()
			cfg.SkipIV = c.skipIV
			cfg.SkipPearson = c.skipPearson
			for i := 0; i < b.N; i++ {
				if _, err := safe.Select(cols, ds.Train.Label, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPipelineTransformRow(b *testing.B) {
	ds := benchDataset(b, 2000, 12)
	eng, err := safe.New(safe.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pipeline, _, err := eng.Fit(ds.Train)
	if err != nil {
		b.Fatal(err)
	}
	row := ds.Test.Row(0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.TransformRow(row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineTransformBatch(b *testing.B) {
	ds := benchDataset(b, 2000, 12)
	eng, err := safe.New(safe.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pipeline, _, err := eng.Fit(ds.Train)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Transform(ds.Test); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassifierXGB(b *testing.B) {
	ds := benchDataset(b, 2000, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := safe.TrainClassifier("XGB", ds.Train, 1); err != nil {
			b.Fatal(err)
		}
	}
}
