package safe

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/shard"
)

// This file is the composable fit entrypoint: one Fit(ctx, source, opts...)
// call built from a Source (in-memory frame, chunked source, or CSV file)
// and functional options, validated into an immutable Plan that picks the
// engine — the in-memory Engineer or the sharded out-of-core coordinator —
// from the source and options. Both engines select identical features for
// identical effective configurations, honour context cancellation, and
// emit the same FitEvent progress stream.

// FitEvent is one element of a fit's progress stream; see WithEvents.
type FitEvent = core.FitEvent

// EventKind discriminates FitEvent payloads.
type EventKind = core.EventKind

// FitEvent kinds, in emission order within their spans.
const (
	EventFitStart       = core.EventFitStart
	EventIterationStart = core.EventIterationStart
	EventStageStart     = core.EventStageStart
	EventStageEnd       = core.EventStageEnd
	EventIterationEnd   = core.EventIterationEnd
	EventFitEnd         = core.EventFitEnd
)

// FitStage identifies one stage of a SAFE iteration.
type FitStage = core.Stage

// Fit stages, in execution order within an iteration.
const (
	StageMine     = core.StageMine
	StageScore    = core.StageScore
	StageGenerate = core.StageGenerate
	StageIVFilter = core.StageIVFilter
	StagePearson  = core.StagePearson
	StageRank     = core.StageRank
)

// Source is a training data source accepted by Fit: an in-memory Frame
// (FromFrame), a chunked out-of-core source (FromChunks), or a CSV file
// (FromCSVFile). The source, together with the options, determines which
// fit engine runs: chunked sources always fit sharded; frames and CSV
// files fit in memory unless WithSharding asks for the out-of-core engine.
type Source interface {
	// open resolves the source against the validated plan. Exactly one of
	// the returned frame/chunks is non-nil.
	open(p *Plan) (*openedSource, error)
}

// openedSource is a resolved Source: either an in-memory frame or a
// chunk source, plus a close hook for sources that own a file handle.
type openedSource struct {
	frame  *Frame
	chunks ChunkSource
	close  func() error
}

type frameSource struct{ f *Frame }

// FromFrame wraps an in-memory labelled frame as a Source. With
// WithSharding(chunkRows) the frame is fitted by the out-of-core engine
// over chunkRows-row partitions (chunkRows <= 0 splits into 4).
func FromFrame(f *Frame) Source { return frameSource{f: f} }

func (s frameSource) open(p *Plan) (*openedSource, error) {
	if s.f == nil {
		return nil, errors.New("safe: FromFrame: nil frame")
	}
	if !p.sharded {
		return &openedSource{frame: s.f}, nil
	}
	chunkRows := p.chunkRows
	if chunkRows <= 0 {
		chunkRows = (s.f.NumRows() + 3) / 4
	}
	return &openedSource{chunks: frame.NewFrameChunks(s.f, chunkRows)}, nil
}

type chunkSource struct{ src ChunkSource }

// FromChunks wraps a chunked source (e.g. OpenCSVChunks, NewFrameChunks, or
// any ChunkSource implementation) as a Source. Chunked sources always fit
// through the sharded out-of-core engine; the caller keeps ownership of the
// source and closes it after the fit if it needs closing.
func FromChunks(src ChunkSource) Source { return chunkSource{src: src} }

func (s chunkSource) open(*Plan) (*openedSource, error) {
	if s.src == nil {
		return nil, errors.New("safe: FromChunks: nil chunk source")
	}
	return &openedSource{chunks: s.src}, nil
}

type csvSource struct{ path, label string }

// FromCSVFile names a labelled CSV file as a Source. By default the file
// is read into memory and fitted by the in-memory engine; with
// WithSharding(chunkRows) it streams through the out-of-core engine in
// chunkRows-row partitions (chunkRows <= 0 picks the reader default), so
// files far larger than memory fit. labelCol may be "" for an unlabelled
// file (which a fit will then reject — useful only with transforms).
func FromCSVFile(path, labelCol string) Source { return csvSource{path: path, label: labelCol} }

func (s csvSource) open(p *Plan) (*openedSource, error) {
	if !p.sharded {
		f, err := ReadCSVFile(s.path, s.label)
		if err != nil {
			return nil, err
		}
		return &openedSource{frame: f}, nil
	}
	cs, err := frame.OpenCSVChunks(s.path, s.label, p.chunkRows)
	if err != nil {
		return nil, err
	}
	return &openedSource{chunks: cs, close: cs.Close}, nil
}

type colFileSource struct{ path string }

// FromColumnFile names a colstore binary columnar file (written by
// safe-convert, safe-datagen -format colstore, or a colstore writer) as a
// Source. Column files always fit through the sharded out-of-core engine,
// with the file's own row groups as the stream's partitions (WithSharding's
// chunkRows does not apply). Float columns decode bit-exactly — zero-copy
// via mmap where the platform supports it — string columns stream as their
// dictionary codes (nulls as NaN), and the engine's refinement passes skip
// row groups whose footer block statistics prove them irrelevant.
func FromColumnFile(path string) Source { return colFileSource{path: path} }

func (s colFileSource) open(*Plan) (*openedSource, error) {
	src, err := colstore.OpenSource(s.path)
	if err != nil {
		return nil, err
	}
	return &openedSource{chunks: src, close: src.Close}, nil
}

// planOpts is the mutable state the functional options act on; NewPlan
// freezes it into a Plan.
type planOpts struct {
	cfg        Config
	sharded    bool
	chunkRows  int
	sketchSize int
	approxCuts bool
	hasSketch  bool
	retry      *RetryPolicy
	earlyStop  bool // Patience set via WithEarlyStopping, not WithConfig
	valid      *Frame
	distAddrs  []string
}

// Option configures a fit plan; see the With* constructors. Options are
// applied in the order given, later options overriding earlier ones.
type Option func(*planOpts) error

// WithConfig replaces the plan's entire base configuration (the default is
// DefaultConfig()). Options after it still apply on top — it is the escape
// hatch for settings without a dedicated option, and what the deprecated
// Engineer/FitSharded shims route through.
func WithConfig(cfg Config) Option {
	return func(o *planOpts) error {
		if cfg.Events == nil {
			cfg.Events = o.cfg.Events // an earlier WithEvents survives
		}
		o.cfg = cfg
		return nil
	}
}

// WithTask selects the prediction task: BinaryTask (the default),
// MulticlassTask(k), or RegressionTask.
func WithTask(task Task) Option {
	return func(o *planOpts) error {
		o.cfg.Task = task
		return nil
	}
}

// WithOperators names the generation operators (keys of the registry).
// The default is the paper's experimental set {add, sub, mul, div}.
func WithOperators(names ...string) Option {
	return func(o *planOpts) error {
		if len(names) == 0 {
			return errors.New("safe: WithOperators requires at least one operator name")
		}
		o.cfg.Operators = append([]string(nil), names...)
		return nil
	}
}

// WithRegistry resolves operator names through a custom registry (for
// domain operators registered beyond the built-in catalogue).
func WithRegistry(reg *Registry) Option {
	return func(o *planOpts) error {
		o.cfg.Registry = reg
		return nil
	}
}

// WithIterations sets nIter of Algorithm 1 (default 1).
func WithIterations(n int) Option {
	return func(o *planOpts) error {
		if n <= 0 {
			return fmt.Errorf("safe: WithIterations requires n > 0, got %d", n)
		}
		o.cfg.Iterations = n
		return nil
	}
}

// WithTimeBudget sets tIter: the fit stops starting new iterations once d
// has elapsed. For hard wall-clock abort semantics use a deadline on the
// context instead.
func WithTimeBudget(d time.Duration) Option {
	return func(o *planOpts) error {
		o.cfg.TimeBudget = d
		return nil
	}
}

// WithBudget caps the selected feature count per iteration (the paper's
// output budget; 0 restores the default of 2 × original features).
func WithBudget(maxFeatures int) Option {
	return func(o *planOpts) error {
		o.cfg.MaxFeatures = maxFeatures
		return nil
	}
}

// WithGamma sets γ of Algorithm 2, the number of top combinations kept for
// generation (0 restores the default of 2 × original features).
func WithGamma(gamma int) Option {
	return func(o *planOpts) error {
		o.cfg.Gamma = gamma
		return nil
	}
}

// WithSelection sets the selection thresholds: ivThreshold is α of
// Algorithm 3 (features at or below it are dropped), pearsonThreshold is θ
// of Algorithm 4 (candidates correlating above it with a kept feature are
// redundant).
func WithSelection(ivThreshold, pearsonThreshold float64) Option {
	return func(o *planOpts) error {
		o.cfg.IVThreshold = ivThreshold
		o.cfg.PearsonThreshold = pearsonThreshold
		return nil
	}
}

// WithSeed drives all stochastic components; fits are fully deterministic
// given a seed (for any worker count and either engine).
func WithSeed(seed int64) Option {
	return func(o *planOpts) error {
		o.cfg.Seed = seed
		return nil
	}
}

// WithWorkers bounds the shared worker pool: n <= 0 selects GOMAXPROCS,
// n == 1 runs serial. Fit results are identical for any worker count.
func WithWorkers(n int) Option {
	return func(o *planOpts) error {
		o.cfg.Workers = n
		o.cfg.Parallel = n != 1
		return nil
	}
}

// WithEvents registers a consumer for the fit's structured progress stream:
// iteration and stage start/end events with candidate and survivor counts,
// rows processed, and wall times — the observability hook for multi-minute
// fits. fn runs synchronously on the fitting goroutine and must return
// quickly; see FitEvent.
func WithEvents(fn func(FitEvent)) Option {
	return func(o *planOpts) error {
		o.cfg.Events = fn
		return nil
	}
}

// WithSharding selects the sharded out-of-core engine for frame and CSV
// sources, streaming the data in chunkRows-row partitions (chunkRows <= 0
// picks a source-appropriate default). Chunked sources fit sharded with or
// without this option; for them WithSharding only overrides nothing — the
// partitioning is the source's own.
func WithSharding(chunkRows int) Option {
	return func(o *planOpts) error {
		o.sharded = true
		o.chunkRows = chunkRows
		return nil
	}
}

// WithSketch tunes the sharded engine's quantile sketches: size is the
// per-level summary size (0 keeps the default), approxCuts skips the
// exact-cut refinement pass, trading bit-exact equivalence with the
// in-memory engine for one fewer streaming pass per stage. Only valid for
// plans that fit sharded.
func WithSketch(size int, approxCuts bool) Option {
	return func(o *planOpts) error {
		o.sketchSize = size
		o.approxCuts = approxCuts
		o.hasSketch = true
		return nil
	}
}

// WithRetry makes the sharded engine retry transient chunk-read errors
// (frame sources that implement the Transienter contract — flaky disks,
// brief stalls) with capped exponential backoff instead of aborting; see
// RetryPolicy and DefaultRetryPolicy. Retried reads re-run before the
// chunk is folded, so a recovered fit selects features bit-identical to a
// fault-free run; permanent errors still abort fast with a typed
// PassError chain, and Result.Shard.Retries counts what was absorbed.
// Only valid for plans that fit sharded.
func WithRetry(p RetryPolicy) Option {
	return func(o *planOpts) error {
		if p.MaxAttempts < 1 {
			return fmt.Errorf("safe: WithRetry requires MaxAttempts >= 1, got %d", p.MaxAttempts)
		}
		if p.BaseDelay < 0 || p.MaxDelay < 0 {
			return errors.New("safe: WithRetry requires non-negative delays")
		}
		o.retry = &p
		return nil
	}
}

// WithValidation supplies a validation frame: each round's selection is
// scored on it (Report.Iterations[i].ValidAUC) and, combined with
// WithEarlyStopping, iteration halts once the score stops improving. Only
// the in-memory engine supports validation-tracked fits.
func WithValidation(valid *Frame) Option {
	return func(o *planOpts) error {
		if valid == nil {
			return errors.New("safe: WithValidation requires a non-nil frame")
		}
		o.valid = valid
		return nil
	}
}

// WithEarlyStopping stops iterating after patience consecutive rounds
// without at least minDelta validation-score improvement, keeping the best
// round's selection. Requires WithValidation.
func WithEarlyStopping(patience int, minDelta float64) Option {
	return func(o *planOpts) error {
		if patience <= 0 {
			return fmt.Errorf("safe: WithEarlyStopping requires patience > 0, got %d", patience)
		}
		o.cfg.Patience = patience
		o.cfg.MinDelta = minDelta
		o.earlyStop = true
		return nil
	}
}

// Plan is a validated, immutable fit session: the effective configuration,
// the selected engine, and the source binding. Build one with NewPlan (or
// implicitly through Fit), inspect it, then run it any number of times
// with Plan.Fit — every run starts from the same frozen settings.
type Plan struct {
	src       Source
	cfg       Config // normalised effective configuration
	sharded   bool
	chunkRows int
	shardCfg  ShardConfig
	valid     *Frame
	distAddrs []string
}

// NewPlan validates a source and options into an immutable Plan without
// running anything: option errors, configuration errors, and source/option
// conflicts surface here.
func NewPlan(source Source, opts ...Option) (*Plan, error) {
	if source == nil {
		return nil, errors.New("safe: nil source")
	}
	o := planOpts{cfg: DefaultConfig()}
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("safe: nil option")
		}
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	switch source.(type) {
	case chunkSource, colFileSource:
		o.sharded = true
	}
	if o.hasSketch && !o.sharded {
		return nil, errors.New("safe: WithSketch tunes the sharded engine; combine it with WithSharding or a chunked source")
	}
	if o.retry != nil && !o.sharded {
		return nil, errors.New("safe: WithRetry tunes the sharded engine; combine it with WithSharding or a chunked source")
	}
	if o.valid != nil && o.sharded {
		return nil, errors.New("safe: validation-tracked fits require the in-memory engine; drop WithSharding/WithValidation")
	}
	if len(o.distAddrs) > 0 {
		switch source.(type) {
		case csvSource, colFileSource:
		default:
			return nil, errors.New("safe: WithDistributed requires a file-backed source (FromCSVFile or FromColumnFile) that workers can open by path")
		}
	}
	// Patience only acts when a validation frame is present (the engines
	// have always ignored it otherwise), so the pairing is enforced only
	// when the caller asked for early stopping explicitly — a Config with a
	// stray Patience ports through WithConfig exactly as it always fit.
	if o.earlyStop && o.valid == nil {
		return nil, errors.New("safe: WithEarlyStopping requires WithValidation")
	}
	cfg, err := core.NormalizeConfig(o.cfg)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		src:       source,
		cfg:       cfg,
		sharded:   o.sharded,
		chunkRows: o.chunkRows,
		valid:     o.valid,
		distAddrs: o.distAddrs,
	}
	if o.sharded {
		p.shardCfg = ShardConfig{Core: cfg, SketchSize: o.sketchSize, ApproxCuts: o.approxCuts}
		if o.retry != nil {
			p.shardCfg.Retry = *o.retry
		}
	}
	return p, nil
}

// Config returns a copy of the plan's effective (normalised) configuration.
func (p *Plan) Config() Config { return p.cfg }

// Sharded reports whether the plan runs the out-of-core engine.
func (p *Plan) Sharded() bool { return p.sharded }

// Engine names the engine the plan selected: "in-memory", "sharded", or
// "distributed".
func (p *Plan) Engine() string {
	if len(p.distAddrs) > 0 {
		return "distributed"
	}
	if p.sharded {
		return "sharded"
	}
	return "in-memory"
}

// Distributed reports whether the plan delegates pass compute to a worker
// fleet; see WithDistributed.
func (p *Plan) Distributed() bool { return len(p.distAddrs) > 0 }

// Result is the outcome of a fit: the learned pipeline Ψ, the per-iteration
// report, and — for sharded fits — how the engine consumed its source.
type Result struct {
	// Pipeline is the learned feature generation function Ψ.
	Pipeline *Pipeline
	// Report summarises the fit per iteration, including per-stage
	// wall-clock timings.
	Report *Report
	// Shard reports source consumption (passes, rows streamed, sketch
	// error bound); nil for in-memory fits.
	Shard *ShardStats
}

// Fit runs the plan: the source is opened (and closed again, when the plan
// opened it), the engine the plan selected learns Ψ, and a cancelled or
// expired ctx aborts the run promptly with ctx.Err() at the next stage,
// candidate, boosting round, or source chunk — whichever comes first — with
// no leaked goroutines.
func (p *Plan) Fit(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(p.distAddrs) > 0 {
		return p.fitDistributed(ctx)
	}
	src, err := p.src.open(p)
	if err != nil {
		return nil, err
	}
	if src.close != nil {
		defer src.close() //nolint:errcheck // read-only source teardown
	}

	if p.sharded {
		pipeline, report, stats, err := shard.Fit(ctx, src.chunks, p.shardCfg)
		if err != nil {
			return nil, err
		}
		return &Result{Pipeline: pipeline, Report: report, Shard: stats}, nil
	}

	eng, err := core.New(p.cfg)
	if err != nil {
		return nil, err
	}
	var (
		pipeline *Pipeline
		report   *Report
	)
	if p.valid != nil {
		pipeline, report, err = eng.FitWithValidationContext(ctx, src.frame, p.valid)
	} else {
		pipeline, report, err = eng.FitContext(ctx, src.frame)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Pipeline: pipeline, Report: report}, nil
}

// Fit learns the SAFE feature generation function Ψ from a training source
// in one call: the options validate into a Plan (see NewPlan) and the plan
// runs under ctx. The engine is picked from the source and options —
// in-memory for frames and CSV files, sharded out-of-core for chunked
// sources or when WithSharding asks for it — and both engines select
// identical features for identical effective configurations.
//
//	res, err := safe.Fit(ctx, safe.FromFrame(train),
//	    safe.WithTask(safe.RegressionTask()),
//	    safe.WithIterations(2),
//	    safe.WithEvents(progress))
//	engineered, err := res.Pipeline.Transform(test)
func Fit(ctx context.Context, source Source, opts ...Option) (*Result, error) {
	plan, err := NewPlan(source, opts...)
	if err != nil {
		return nil, err
	}
	return plan.Fit(ctx)
}
