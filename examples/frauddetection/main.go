// Fraud detection: the industrial scenario of the paper's Section V-B.
// An imbalanced (≈2% positive) transaction dataset is engineered with SAFE
// and evaluated with the three classifiers Ant Financial runs at scale
// (LR, RF, XGB), reproducing the shape of Table VIII: SAFE consistently
// improves AUC over the original features.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	spec := safe.FraudDatasetSpec()
	ds, err := safe.GenerateDataset(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fraud dataset: %d train / %d test rows, %d features, %.2f%% fraud\n",
		ds.Train.NumRows(), ds.Test.NumRows(), ds.Train.NumCols(), 100*ds.Train.PositiveRate())

	// Feature engineering with both budget styles an online system uses:
	// the soft per-iteration budget (tIter of Algorithm 1, WithTimeBudget)
	// plus a hard wall-clock deadline on the context — past it, the fit
	// aborts promptly with ctx.Err() instead of overshooting its slot.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	start := time.Now()
	res, err := safe.Fit(ctx, safe.FromFrame(ds.Train),
		safe.WithTimeBudget(2*time.Minute),
		safe.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	pipeline := res.Pipeline
	fmt.Printf("SAFE fit in %v: %d -> %d features\n",
		time.Since(start).Round(time.Millisecond), ds.Train.NumCols(), pipeline.NumFeatures())

	trNew, err := pipeline.Transform(ds.Train)
	if err != nil {
		log.Fatal(err)
	}
	teNew, err := pipeline.Transform(ds.Test)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nCLF    ORIG     SAFE")
	for _, clfName := range []string{"LR", "RF", "XGB"} {
		orig, err := safe.TrainClassifier(clfName, ds.Train, 1)
		if err != nil {
			log.Fatal(err)
		}
		engd, err := safe.TrainClassifier(clfName, trNew, 1)
		if err != nil {
			log.Fatal(err)
		}
		aucOrig := safe.AUC(orig.Predict(ds.Test), ds.Test.Label)
		aucSafe := safe.AUC(engd.Predict(teNew), teNew.Label)
		fmt.Printf("%-5s  %.4f   %.4f\n", clfName, aucOrig, aucSafe)
	}

	// Real-time scoring path: raw transaction -> features -> fraud score.
	model, err := safe.TrainClassifier("XGB", trNew, 1)
	if err != nil {
		log.Fatal(err)
	}
	raw := ds.Test.Row(0, nil)
	feats, err := pipeline.TransformRow(raw)
	if err != nil {
		log.Fatal(err)
	}
	single := &safe.Frame{}
	for i, name := range trNew.Names() {
		single.AddColumn(name, []float64{feats[i]})
	}
	fmt.Printf("\nreal-time inference demo: transaction 0 fraud score = %.4f (label %v)\n",
		model.Predict(single)[0], ds.Test.Label[0])
}
