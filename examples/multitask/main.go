// Example multitask runs SAFE end-to-end on all three task families —
// binary classification, 3-class classification, and regression — over the
// same planted-interaction signal:
//
//  1. fit the task-aware engineer in memory AND sharded out-of-core over 4
//     partitions, confirming both select identical features;
//  2. train a downstream GBDT (sigmoid / softmax / squared-error) on the
//     engineered features and compare against the same model on raw
//     features;
//  3. save pipeline + model into a model directory, reload through the
//     serving registry, and score a row — showing the per-task prediction
//     shape (scalar score vs class-probability vector).
//
// Run with: go run ./examples/multitask
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/datagen"
	"repro/internal/gbdt"
	"repro/internal/serve"
)

func main() {
	cases := []struct {
		task    safe.Task
		target  datagen.TargetKind
		classes int
	}{
		{safe.BinaryTask(), datagen.TargetBinary, 0},
		{safe.MulticlassTask(3), datagen.TargetMulticlass, 3},
		{safe.RegressionTask(), datagen.TargetRegression, 0},
	}
	modelDir, err := os.MkdirTemp("", "multitask-models")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(modelDir)
	reg := serve.NewRegistry()

	for _, c := range cases {
		fmt.Printf("== task %s ==\n", c.task)
		ds, err := safe.GenerateDataset(datagen.Spec{
			Name: "multitask", Train: 4000, Test: 1500, Dim: 12,
			Interactions: 4, SignalScale: 2.5, Seed: 7,
			Target: c.target, Classes: c.classes,
		})
		if err != nil {
			log.Fatal(err)
		}

		ctx := context.Background()
		taskOpts := []safe.Option{safe.WithTask(c.task), safe.WithSeed(1)}
		res, err := safe.Fit(ctx, safe.FromFrame(ds.Train), taskOpts...)
		if err != nil {
			log.Fatal(err)
		}
		pipeline, report := res.Pipeline, res.Report
		last := report.Iterations[len(report.Iterations)-1]
		fmt.Printf("in-memory fit: %d candidates -> IV %d -> Pearson %d -> selected %d (%v)\n",
			last.Candidates, last.AfterIV, last.AfterPearson, last.Selected, report.Total.Round(1e6))

		// The sharded engine — the same Fit call plus WithSharding — must
		// reach the identical selection from 4 partitions of the same rows.
		shRes, err := safe.Fit(ctx, safe.FromFrame(ds.Train),
			append(taskOpts, safe.WithSharding(ds.Train.NumRows()/4))...)
		if err != nil {
			log.Fatal(err)
		}
		shardedP, st := shRes.Pipeline, shRes.Shard
		if fmt.Sprint(shardedP.Output) != fmt.Sprint(pipeline.Output) {
			log.Fatalf("sharded selection diverged:\n in-memory: %v\n sharded:   %v",
				pipeline.Output, shardedP.Output)
		}
		fmt.Printf("sharded fit over %d partitions selects the identical %d features\n",
			st.Partitions, len(shardedP.Output))

		// Downstream model on engineered vs raw features.
		mcfg := gbdt.DefaultConfig()
		mcfg.NumTrees = 40
		c.task.ApplyObjective(&mcfg)
		model, engineered := evaluate(pipeline, ds, mcfg, c.task)
		raw := evaluateRaw(ds, mcfg, c.task)
		fmt.Printf("downstream %s: raw %.4f -> engineered %.4f\n", metricName(c.task), raw, engineered)

		// Persist and serve: the task round-trips with the artefacts.
		name := "multitask-" + c.task.String()
		vdir := filepath.Join(modelDir, name, "v1")
		if err := os.MkdirAll(vdir, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := pipeline.SaveFile(filepath.Join(vdir, "pipeline.json")); err != nil {
			log.Fatal(err)
		}
		if err := model.SaveFile(filepath.Join(vdir, "model.json")); err != nil {
			log.Fatal(err)
		}
	}

	n, err := reg.LoadDir(modelDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== serving %d loaded pipeline(s) ==\n", n)
	for _, info := range reg.Snapshot() {
		e, err := reg.Get(info.Name, "")
		if err != nil {
			log.Fatal(err)
		}
		row := make([]float64, len(e.Pipeline.OriginalNames))
		features, err := e.Pipeline.TransformBatch([][]float64{row})
		if err != nil {
			log.Fatal(err)
		}
		pred := e.Model.PredictRowVector(features[0])
		fmt.Printf("%s (task=%s): /predict emits %d value(s) per row: %v\n",
			info.Name, info.Task, len(pred), compact(pred))
	}
}

// trainDownstream fits the task's GBDT on the engineered training features.
func trainDownstream(p *safe.Pipeline, ds *safe.Dataset, mcfg gbdt.Config) (*gbdt.Model, error) {
	tr, err := p.Transform(ds.Train)
	if err != nil {
		return nil, err
	}
	cols := make([][]float64, tr.NumCols())
	for j := range cols {
		cols[j] = tr.Columns[j].Values
	}
	return gbdt.Train(cols, tr.Label, tr.Names(), mcfg)
}

// evaluate trains the task's GBDT on the engineered features and scores it
// on the engineered test set, returning the model for reuse (persistence).
func evaluate(p *safe.Pipeline, ds *safe.Dataset, mcfg gbdt.Config, task safe.Task) (*gbdt.Model, float64) {
	model, err := trainDownstream(p, ds, mcfg)
	if err != nil {
		log.Fatal(err)
	}
	te, err := p.Transform(ds.Test)
	if err != nil {
		log.Fatal(err)
	}
	return model, score(model, te, task)
}

// evaluateRaw scores the same GBDT trained on the raw features.
func evaluateRaw(ds *safe.Dataset, mcfg gbdt.Config, task safe.Task) float64 {
	cols := make([][]float64, ds.Train.NumCols())
	for j := range cols {
		cols[j] = ds.Train.Columns[j].Values
	}
	model, err := gbdt.Train(cols, ds.Train.Label, ds.Train.Names(), mcfg)
	if err != nil {
		log.Fatal(err)
	}
	return score(model, ds.Test, task)
}

func score(model *gbdt.Model, f *safe.Frame, task safe.Task) float64 {
	cols := make([][]float64, f.NumCols())
	for j := range cols {
		cols[j] = f.Columns[j].Values
	}
	preds := model.Predict(cols)
	switch task.Kind {
	case safe.TaskMulticlass:
		return safe.ClassAccuracy(preds, f.Label)
	case safe.TaskRegression:
		return -safe.RMSE(preds, f.Label) // higher is better, like the others
	default:
		return safe.AUC(preds, f.Label)
	}
}

func metricName(task safe.Task) string {
	switch task.Kind {
	case safe.TaskMulticlass:
		return "accuracy"
	case safe.TaskRegression:
		return "negative RMSE"
	default:
		return "AUC"
	}
}

func compact(xs []float64) []string {
	out := make([]string, len(xs))
	for i, v := range xs {
		out[i] = fmt.Sprintf("%.3f", v)
	}
	return out
}
