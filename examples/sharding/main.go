// Sharding: fit SAFE out-of-core over a chunked CSV file and show that the
// sharded engine — per-partition mergeable sketches, a resident binned
// matrix for the XGBoost stages, and a handful of streaming passes —
// selects exactly the same features as the in-memory fit on the same rows.
//
// The same ChunkSource machinery drives `safe -shards/-chunk-rows` on files
// that never fit in memory; here the file is small so the two paths can be
// compared side by side.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
)

func main() {
	// 1. Data: 40k rows with planted interactions, serialised to CSV — the
	//    on-disk shape the out-of-core path consumes.
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "sharding", Train: 40000, Test: 2000, Dim: 16,
		Interactions: 5, SignalScale: 2.5, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "safe-sharding")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "train.csv")
	if err := ds.Train.WriteCSVFile(path); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("training file: %s (%.1f MB, %d rows x %d features)\n",
		path, float64(fi.Size())/(1<<20), ds.Train.NumRows(), ds.Train.NumCols())

	cfg := safe.DefaultConfig()
	cfg.Seed = 1

	// 2. Reference: the in-memory fit.
	eng, err := safe.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	memPipeline, _, err := eng.Fit(ds.Train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nin-memory fit:  %7v  -> %d features\n", time.Since(t0).Round(time.Millisecond), memPipeline.NumFeatures())

	// 3. Sharded: stream the CSV in 5k-row chunks (8 partitions). Raw
	//    columns never materialise; the engine makes a few passes over the
	//    file, merging quantile sketches, label histograms and co-moment
	//    matrices per partition.
	src, err := safe.OpenCSVChunks(path, "label", 5000)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	shardCfg := safe.DefaultShardConfig()
	shardCfg.Core = cfg
	t1 := time.Now()
	shPipeline, _, stats, err := safe.FitSharded(src, shardCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sharded fit:    %7v  -> %d features (%d partitions, %d passes, %d rows streamed)\n",
		time.Since(t1).Round(time.Millisecond), shPipeline.NumFeatures(),
		stats.Partitions, stats.Passes, stats.RowsStreamed)

	// 4. The decisive comparison: identical features, identical order.
	same := len(memPipeline.Output) == len(shPipeline.Output)
	for i := 0; same && i < len(memPipeline.Output); i++ {
		same = memPipeline.Output[i] == shPipeline.Output[i]
	}
	fmt.Printf("\nselections identical: %v\n", same)
	fmt.Println("first engineered formulas:")
	for i, f := range shPipeline.Formulas() {
		if i == 6 {
			fmt.Printf("  ... and %d more\n", len(shPipeline.Output)-i)
			break
		}
		fmt.Printf("  %s\n", f)
	}

	// 5. Approx mode: skip the exact cut-refinement passes and bin at the
	//    sketches' approximate cuts — fewer passes, near-identical output,
	//    for when pass count over a slow medium dominates.
	if err := src.Reset(); err != nil {
		log.Fatal(err)
	}
	shardCfg.ApproxCuts = true
	t2 := time.Now()
	apPipeline, _, apStats, err := safe.FitSharded(src, shardCfg)
	if err != nil {
		log.Fatal(err)
	}
	overlap := 0
	memSet := map[string]bool{}
	for _, name := range memPipeline.Output {
		memSet[name] = true
	}
	for _, name := range apPipeline.Output {
		if memSet[name] {
			overlap++
		}
	}
	fmt.Printf("\napprox-cut fit: %7v  -> %d features (%d passes, rank error <= %d of %d rows, %d/%d overlap with exact)\n",
		time.Since(t2).Round(time.Millisecond), apPipeline.NumFeatures(), apStats.Passes,
		apStats.MaxQuantileRankError, apStats.Rows, overlap, len(memPipeline.Output))
}
