// Sharding: fit SAFE out-of-core over a chunked CSV file and show that the
// sharded engine — per-partition mergeable sketches, a resident binned
// matrix for the XGBoost stages, and a handful of streaming passes —
// selects exactly the same features as the in-memory fit on the same rows.
//
// The same ChunkSource machinery drives `safe -shards/-chunk-rows` on files
// that never fit in memory; here the file is small so the two paths can be
// compared side by side.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
)

func main() {
	// 1. Data: 40k rows with planted interactions, serialised to CSV — the
	//    on-disk shape the out-of-core path consumes.
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "sharding", Train: 40000, Test: 2000, Dim: 16,
		Interactions: 5, SignalScale: 2.5, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "safe-sharding")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "train.csv")
	if err := ds.Train.WriteCSVFile(path); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("training file: %s (%.1f MB, %d rows x %d features)\n",
		path, float64(fi.Size())/(1<<20), ds.Train.NumRows(), ds.Train.NumCols())

	ctx := context.Background()

	// 2. Reference: the in-memory fit.
	t0 := time.Now()
	memRes, err := safe.Fit(ctx, safe.FromFrame(ds.Train), safe.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	memPipeline := memRes.Pipeline
	fmt.Printf("\nin-memory fit:  %7v  -> %d features\n", time.Since(t0).Round(time.Millisecond), memPipeline.NumFeatures())

	// 3. Sharded: the same Fit call, but the CSV source plus WithSharding
	//    selects the out-of-core engine, streaming the file in 5k-row
	//    chunks (8 partitions). Raw columns never materialise; the engine
	//    makes a few passes over the file, merging quantile sketches, label
	//    histograms and co-moment matrices per partition.
	t1 := time.Now()
	shRes, err := safe.Fit(ctx, safe.FromCSVFile(path, "label"),
		safe.WithSeed(1),
		safe.WithSharding(5000))
	if err != nil {
		log.Fatal(err)
	}
	shPipeline, stats := shRes.Pipeline, shRes.Shard
	fmt.Printf("sharded fit:    %7v  -> %d features (%d partitions, %d passes, %d rows streamed)\n",
		time.Since(t1).Round(time.Millisecond), shPipeline.NumFeatures(),
		stats.Partitions, stats.Passes, stats.RowsStreamed)

	// 4. The decisive comparison: identical features, identical order.
	same := len(memPipeline.Output) == len(shPipeline.Output)
	for i := 0; same && i < len(memPipeline.Output); i++ {
		same = memPipeline.Output[i] == shPipeline.Output[i]
	}
	fmt.Printf("\nselections identical: %v\n", same)
	fmt.Println("first engineered formulas:")
	for i, f := range shPipeline.Formulas() {
		if i == 6 {
			fmt.Printf("  ... and %d more\n", len(shPipeline.Output)-i)
			break
		}
		fmt.Printf("  %s\n", f)
	}

	// 5. Approx mode (WithSketch): skip the exact cut-refinement passes and
	//    bin at the sketches' approximate cuts — fewer passes,
	//    near-identical output, for when pass count over a slow medium
	//    dominates.
	t2 := time.Now()
	apRes, err := safe.Fit(ctx, safe.FromCSVFile(path, "label"),
		safe.WithSeed(1),
		safe.WithSharding(5000),
		safe.WithSketch(2048, true))
	if err != nil {
		log.Fatal(err)
	}
	apPipeline, apStats := apRes.Pipeline, apRes.Shard
	overlap := 0
	memSet := map[string]bool{}
	for _, name := range memPipeline.Output {
		memSet[name] = true
	}
	for _, name := range apPipeline.Output {
		if memSet[name] {
			overlap++
		}
	}
	fmt.Printf("\napprox-cut fit: %7v  -> %d features (%d passes, rank error <= %d of %d rows, %d/%d overlap with exact)\n",
		time.Since(t2).Round(time.Millisecond), apPipeline.NumFeatures(), apStats.Passes,
		apStats.MaxQuantileRankError, apStats.Rows, overlap, len(memPipeline.Output))
}
