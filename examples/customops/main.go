// Custom operators: Section III requires that "new operators should be
// easily added". This example registers a domain-specific operator (a
// clipped percentage-change, common in risk features), runs SAFE with an
// extended operator set including GroupByThen aggregates, and prints the
// interpretable formulas of what survived selection.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro"
)

// pctChange is (a-b)/|b| clipped to [-10, 10] — a typical hand-crafted risk
// feature ("how far is this amount from the reference").
type pctChange struct{}

func (pctChange) Name() string      { return "pct_change" }
func (pctChange) Arity() safe.Arity { return safe.Binary }
func (pctChange) Fit(cols [][]float64) (safe.Applier, error) {
	if len(cols) != 2 {
		return nil, fmt.Errorf("pct_change wants 2 inputs, got %d", len(cols))
	}
	return pctApplier{}, nil
}

type pctApplier struct{}

func (pctApplier) TransformRow(v []float64) float64 {
	a, b := v[0], v[1]
	if b == 0 {
		return 0
	}
	out := (a - b) / math.Abs(b)
	return math.Max(-10, math.Min(10, out))
}

func (p pctApplier) Transform(cols [][]float64) []float64 {
	out := make([]float64, len(cols[0]))
	for i := range out {
		out[i] = p.TransformRow([]float64{cols[0][i], cols[1][i]})
	}
	return out
}

func (pctApplier) Formula(names []string) string {
	return fmt.Sprintf("pct_change(%s, %s)", names[0], names[1])
}

func main() {
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "customops", Train: 4000, Test: 1200, Dim: 12,
		Informative: 2, Interactions: 4, SignalScale: 2.5, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Register the custom operator alongside the built-in catalogue.
	reg := safe.NewRegistry()
	reg.Register("pct_change", func() safe.Operator { return pctChange{} })

	res, err := safe.Fit(context.Background(), safe.FromFrame(ds.Train),
		safe.WithRegistry(reg),
		safe.WithOperators(
			"add", "sub", "mul", "div", // the paper's basic set
			"pct_change",  // our domain operator
			"groupby_avg", // SQL-style aggregate from the paper's catalogue
			"log", "sqrt", // unary transforms
		),
		safe.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	pipeline := res.Pipeline

	fmt.Printf("selected %d features (%d generated):\n",
		pipeline.NumFeatures(), pipeline.NumDerived())
	for _, f := range pipeline.Formulas() {
		fmt.Println("  ", f)
	}

	trNew, err := pipeline.Transform(ds.Train)
	if err != nil {
		log.Fatal(err)
	}
	teNew, err := pipeline.Transform(ds.Test)
	if err != nil {
		log.Fatal(err)
	}
	orig, err := safe.TrainClassifier("XGB", ds.Train, 1)
	if err != nil {
		log.Fatal(err)
	}
	engd, err := safe.TrainClassifier("XGB", trNew, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nXGB AUC: original %.4f -> engineered %.4f\n",
		safe.AUC(orig.Predict(ds.Test), ds.Test.Label),
		safe.AUC(engd.Predict(teNew), teNew.Label))
}
