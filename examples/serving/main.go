// Serving: the deployment story of Section IV-E3 at production shape.
// Train SAFE offline twice (a champion and a challenger configuration),
// publish both as versions v1 and v2 of one named pipeline in a model
// directory, load them into the serving layer, drive concurrent batched
// /predict traffic against both, and hot-swap the active version mid-load —
// verifying that not a single request fails during the swap.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/gbdt"
	"repro/internal/serve"
)

func main() {
	// ---- offline training side: two pipeline versions ----
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "serving", Train: 5000, Test: 1000, Dim: 12,
		Informative: 2, Interactions: 4, SignalScale: 2.5, Seed: 51,
	})
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "safe-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	train := func(version string, ops []string) *safe.Pipeline {
		res, err := safe.Fit(context.Background(), safe.FromFrame(ds.Train),
			safe.WithOperators(ops...))
		if err != nil {
			log.Fatal(err)
		}
		pipeline := res.Pipeline
		vdir := filepath.Join(dir, "risk", version)
		if err := os.MkdirAll(vdir, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := pipeline.SaveFile(filepath.Join(vdir, "pipeline.json")); err != nil {
			log.Fatal(err)
		}
		// Train the downstream GBDT on this version's representation and
		// publish it next to the pipeline.
		tr, err := pipeline.Transform(ds.Train)
		if err != nil {
			log.Fatal(err)
		}
		cols := make([][]float64, tr.NumCols())
		for j := range cols {
			cols[j] = tr.Columns[j].Values
		}
		mcfg := gbdt.DefaultConfig()
		mcfg.NumTrees = 30
		model, err := gbdt.Train(cols, tr.Label, tr.Names(), mcfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := model.SaveFile(filepath.Join(vdir, "model.json")); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("offline: risk@%s trained, %d features\n", version, pipeline.NumFeatures())
		return pipeline
	}
	train("v1", []string{"add", "sub", "mul", "div"})
	train("v2", []string{"add", "sub", "mul", "div", "zscore", "groupby_avg"})

	// ---- serving side: a fresh process would only have the directory ----
	reg := serve.NewRegistry()
	n, err := reg.LoadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	server := serve.NewServer(reg, serve.Options{MaxBatch: 1024, CacheSize: 4096})
	srv := httptest.NewServer(server)
	defer srv.Close()
	fmt.Printf("serving: loaded %d versions, active versions: %v\n", n, actives(reg))

	// Drive concurrent batched traffic: half the clients pin v1, half pin
	// v2, and one stream uses the active (unpinned) version while it is
	// hot-swapped from v2 back to v1 mid-load.
	const (
		clients   = 4
		perClient = 50
		batchSize = 64
	)
	rows := make([][]float64, batchSize)
	for i := range rows {
		rows[i] = ds.Test.Row(i%ds.Test.NumRows(), nil)
	}

	var wg sync.WaitGroup
	var failed, served atomic.Uint64
	post := func(req serve.BatchRequest) bool {
		data, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(data))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var out serve.BatchResponse
		if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&out) != nil {
			return false
		}
		return len(out.Scores) == batchSize
	}

	start := time.Now()
	for c := 0; c < clients; c++ {
		version := "v1"
		if c%2 == 1 {
			version = "v2"
		}
		wg.Add(1)
		go func(version string) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if post(serve.BatchRequest{Pipeline: "risk", Version: version, Rows: rows}) {
					served.Add(batchSize)
				} else {
					failed.Add(1)
				}
			}
		}(version)
	}
	// Unpinned stream with a hot swap halfway through.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perClient; i++ {
			if i == perClient/2 {
				if err := reg.Activate("risk", "v1"); err != nil {
					failed.Add(1)
				}
				fmt.Println("serving: hot-swapped active version v2 -> v1 mid-traffic")
			}
			if post(serve.BatchRequest{Pipeline: "risk", Rows: rows}) {
				served.Add(batchSize)
			} else {
				failed.Add(1)
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("serving: %d rows scored in %v (%.0f rows/sec), %d failed requests\n",
		served.Load(), elapsed.Round(time.Millisecond),
		float64(served.Load())/elapsed.Seconds(), failed.Load())

	// Pull the server's own view of the run.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: requests=%d errors=%d rows=%d p50=%.0fus p99=%.0fus cache hits=%d misses=%d\n",
		stats.Requests, stats.Errors, stats.Rows,
		stats.Latency.P50us, stats.Latency.P99us, stats.Cache.Hits, stats.Cache.Misses)
	if failed.Load() > 0 {
		log.Fatalf("serving: %d requests failed — hot swap dropped traffic", failed.Load())
	}
}

func actives(reg *serve.Registry) map[string]string {
	out := map[string]string{}
	for _, info := range reg.Snapshot() {
		out[info.Name] = info.Active
	}
	return out
}
