// Serving: the deployment story of Section IV-E3 (real-time inference).
// Train SAFE offline, save the learned pipeline Ψ as JSON, reload it in a
// fresh "serving process", and score single raw rows through
// Pipeline.TransformRow — demonstrating that the saved artefact is
// self-contained (all fitted operator parameters travel with it).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
)

func main() {
	// ---- offline training side ----
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "serving", Train: 5000, Test: 1000, Dim: 12,
		Informative: 2, Interactions: 4, SignalScale: 2.5, Seed: 51,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := safe.DefaultConfig()
	cfg.Operators = []string{"add", "sub", "mul", "div", "zscore", "groupby_avg"}
	eng, err := safe.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pipeline, _, err := eng.Fit(ds.Train)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "safe-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "pipeline.json")
	if err := pipeline.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("offline: trained Ψ with %d features, saved %d bytes to %s\n",
		pipeline.NumFeatures(), info.Size(), path)

	// Train the downstream model on the engineered representation.
	trNew, err := pipeline.Transform(ds.Train)
	if err != nil {
		log.Fatal(err)
	}
	model, err := safe.TrainClassifier("XGB", trNew, 1)
	if err != nil {
		log.Fatal(err)
	}

	// ---- serving side: a fresh process would only have the JSON file ----
	served, err := safe.LoadPipelineFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving: loaded Ψ (%d nodes, %d outputs)\n",
		len(served.Nodes), served.NumFeatures())

	// Score 5 "requests" end to end and measure per-row latency.
	start := time.Now()
	const requests = 1000
	row := make([]float64, ds.Test.NumCols())
	for i := 0; i < requests; i++ {
		ds.Test.Row(i%ds.Test.NumRows(), row)
		if _, err := served.TransformRow(row); err != nil {
			log.Fatal(err)
		}
	}
	perRow := time.Since(start) / requests
	fmt.Printf("serving: TransformRow latency = %v/request (%d requests)\n", perRow, requests)

	fmt.Println("\nrequest  score    label")
	for i := 0; i < 5; i++ {
		ds.Test.Row(i, row)
		feats, err := served.TransformRow(row)
		if err != nil {
			log.Fatal(err)
		}
		single := &safe.Frame{}
		for j, name := range served.Output {
			single.AddColumn(name, []float64{feats[j]})
		}
		fmt.Printf("%7d  %.4f   %v\n", i, model.Predict(single)[0], ds.Test.Label[i])
	}
}
