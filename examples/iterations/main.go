// Iterations: reproduce the shape of the paper's Fig. 4 — running SAFE for
// more rounds can keep improving AUC before plateauing, because later rounds
// compose features generated in earlier rounds (higher-order combinations).
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "iterations", Train: 5000, Test: 1500, Dim: 14,
		Informative: 2, Interactions: 5, SignalScale: 2.0, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("rounds  features  XGB test AUC")
	for rounds := 0; rounds <= 5; rounds++ {
		var train, test = ds.Train, ds.Test
		nFeatures := ds.Train.NumCols()
		if rounds > 0 {
			res, err := safe.Fit(context.Background(), safe.FromFrame(ds.Train),
				safe.WithIterations(rounds),
				safe.WithSeed(5))
			if err != nil {
				log.Fatal(err)
			}
			pipeline := res.Pipeline
			train, err = pipeline.Transform(ds.Train)
			if err != nil {
				log.Fatal(err)
			}
			test, err = pipeline.Transform(ds.Test)
			if err != nil {
				log.Fatal(err)
			}
			nFeatures = pipeline.NumFeatures()
		}
		model, err := safe.TrainClassifier("XGB", train, 1)
		if err != nil {
			log.Fatal(err)
		}
		auc := safe.AUC(model.Predict(test), test.Label)
		fmt.Printf("%6d  %8d  %.4f\n", rounds, nFeatures, auc)
	}
	fmt.Println("\n(round 0 = original features; the paper's Fig. 4 shows the same improve-then-plateau shape)")
}
