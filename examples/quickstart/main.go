// Quickstart: generate a small dataset with planted feature interactions,
// run SAFE once, and compare XGBoost AUC on the original vs engineered
// representation — the minimal end-to-end use of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Data: 3k rows, 10 features, a few planted pairwise interactions
	//    (in real use: safe.ReadCSVFile("train.csv", "label")).
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "quickstart", Train: 3000, Test: 1000, Dim: 10,
		Informative: 2, Interactions: 3, SignalScale: 2.5, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Fit SAFE with the paper's defaults ({+,-,x,÷}, alpha=0.1, theta=0.8):
	//    one composable call — the context cancels/deadlines the fit, the
	//    source picks the engine, options tune the run (none needed here).
	res, err := safe.Fit(context.Background(), safe.FromFrame(ds.Train))
	if err != nil {
		log.Fatal(err)
	}
	pipeline, report := res.Pipeline, res.Report
	fmt.Printf("SAFE: %d -> %d features in %v (%d generated)\n",
		ds.Train.NumCols(), pipeline.NumFeatures(), report.Total.Round(1e6), pipeline.NumDerived())
	fmt.Println("engineered features (interpretable formulas):")
	for _, f := range pipeline.Formulas() {
		fmt.Println("  ", f)
	}

	// 3. Evaluate: XGBoost on original vs engineered features.
	for _, setup := range []struct {
		name        string
		train, test *safe.Frame
	}{
		{"original", ds.Train, ds.Test},
	} {
		model, err := safe.TrainClassifier("XGB", setup.train, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("XGB AUC (%s): %.4f\n", setup.name, safe.AUC(model.Predict(setup.test), setup.test.Label))
	}
	trNew, err := pipeline.Transform(ds.Train)
	if err != nil {
		log.Fatal(err)
	}
	teNew, err := pipeline.Transform(ds.Test)
	if err != nil {
		log.Fatal(err)
	}
	model, err := safe.TrainClassifier("XGB", trNew, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XGB AUC (SAFE):     %.4f\n", safe.AUC(model.Predict(teNew), teNew.Label))

	// 4. Real-time inference: transform one raw row.
	raw := ds.Test.Row(0, nil)
	features, err := pipeline.TransformRow(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-row inference: %d raw values -> %d features\n", len(raw), len(features))
}
