package safe

import "repro/internal/datagen"

// DatasetSpec describes a synthetic dataset with planted feature
// interactions (the data substrate standing in for the paper's OpenML and
// Ant Financial datasets; see DESIGN.md §3).
type DatasetSpec = datagen.Spec

// Dataset is a generated train/valid/test triple with ground truth about
// the planted signal.
type Dataset = datagen.Dataset

// GenerateDataset builds a synthetic dataset from a spec.
func GenerateDataset(spec DatasetSpec) (*Dataset, error) { return datagen.Generate(spec) }

// TargetKind selects the label type a DatasetSpec generates.
type TargetKind = datagen.TargetKind

// Label kinds for DatasetSpec.Target.
const (
	TargetBinary     = datagen.TargetBinary
	TargetMulticlass = datagen.TargetMulticlass
	TargetRegression = datagen.TargetRegression
)

// TargetForTask maps a prediction task to the dataset generator's label
// settings (Spec.Target, Spec.Classes) — the one place the mapping lives,
// shared by safe-datagen and the benchmark harness so the two tools cannot
// drift apart on what labels a task gets.
func TargetForTask(t Task) (TargetKind, int) {
	switch t.Kind {
	case TaskMulticlass:
		return datagen.TargetMulticlass, t.Classes
	case TaskRegression:
		return datagen.TargetRegression, 0
	default:
		return datagen.TargetBinary, 0
	}
}

// BenchmarkDatasetSpecs returns the 12 Table IV dataset shapes; scale in
// (0,1] shrinks row counts for quick runs.
func BenchmarkDatasetSpecs(scale float64) []DatasetSpec { return datagen.BenchmarkSpecs(scale) }

// BusinessDatasetSpecs returns the 3 Table VII fraud-detection shapes,
// scaled (the paper's originals are 2.5M-8M rows).
func BusinessDatasetSpecs(scale float64) []DatasetSpec { return datagen.BusinessSpecs(scale) }

// FraudDatasetSpec returns a mid-sized imbalanced fraud-detection spec used
// by the examples.
func FraudDatasetSpec() DatasetSpec { return datagen.FraudSpec() }
