//go:build !race

package safe_test

const raceEnabled = false
