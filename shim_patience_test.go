package safe_test

import (
	"testing"

	"repro"
)

// TestShimPatienceWithoutValidation: a Config with Patience > 0 but no
// validation frame has always fitted (the engines ignore Patience without
// one); the deprecated shims routing through the Plan path must not start
// rejecting it. Only the explicit WithEarlyStopping option demands
// WithValidation.
func TestShimPatienceWithoutValidation(t *testing.T) {
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "pat", Train: 800, Test: 100, Dim: 6, Interactions: 2, SignalScale: 2.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := safe.DefaultConfig()
	cfg.Patience = 2
	eng, err := safe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Fit(ds.Train); err != nil {
		t.Fatalf("shim with Patience>0 and no validation frame failed: %v", err)
	}
	shardCfg := safe.DefaultShardConfig()
	shardCfg.Core = cfg
	if _, _, _, err := safe.FitSharded(safe.NewFrameChunks(ds.Train, 200), shardCfg); err != nil {
		t.Fatalf("FitSharded with Patience>0 failed: %v", err)
	}
}
