package safe_test

import (
	"context"
	"testing"

	"repro"
)

// TestShimPatienceWithoutValidation: a Config with Patience > 0 but no
// validation frame has always fitted (the engines ignore Patience without
// one); the deprecated shims routing through the Plan path must not start
// rejecting it. Only the explicit WithEarlyStopping option demands
// WithValidation.
func TestShimPatienceWithoutValidation(t *testing.T) {
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "pat", Train: 800, Test: 100, Dim: 6, Interactions: 2, SignalScale: 2.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := safe.DefaultConfig()
	cfg.Patience = 2
	eng, err := safe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Fit(ds.Train); err != nil {
		t.Fatalf("shim with Patience>0 and no validation frame failed: %v", err)
	}
	shardCfg := safe.DefaultShardConfig()
	shardCfg.Core = cfg
	if _, _, _, err := safe.FitSharded(safe.NewFrameChunks(ds.Train, 200), shardCfg); err != nil {
		t.Fatalf("FitSharded with Patience>0 failed: %v", err)
	}
}

// TestFitOptionPatienceWithoutValidation: the same tolerance holds on the
// Fit option path — a stray Patience ported through WithConfig must fit on
// both engines (only the explicit WithEarlyStopping option demands
// WithValidation).
func TestFitOptionPatienceWithoutValidation(t *testing.T) {
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "pat-opt", Train: 800, Test: 100, Dim: 6, Interactions: 2, SignalScale: 2.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := safe.DefaultConfig()
	cfg.Patience = 2

	ctx := context.Background()
	if _, err := safe.Fit(ctx, safe.FromFrame(ds.Train), safe.WithConfig(cfg)); err != nil {
		t.Fatalf("Fit (in-memory) with Patience>0 via WithConfig failed: %v", err)
	}
	// The sharded engine ignores Patience without a validation frame too —
	// chunked sources route to it implicitly.
	if _, err := safe.Fit(ctx, safe.FromChunks(safe.NewFrameChunks(ds.Train, 200)), safe.WithConfig(cfg)); err != nil {
		t.Fatalf("Fit (sharded) with Patience>0 via WithConfig failed: %v", err)
	}
	// The explicit early-stopping option still demands a validation frame.
	if _, err := safe.Fit(ctx, safe.FromFrame(ds.Train), safe.WithEarlyStopping(2, 0)); err == nil {
		t.Fatal("WithEarlyStopping without WithValidation accepted")
	}
}
