// Command safe runs the SAFE automatic feature engineering pipeline on a
// labelled CSV file and writes the transformed dataset plus a report of the
// generated features.
//
// Usage:
//
//	safe -train train.csv -label y [-test test.csv] [-out out.csv]
//	     [-task binary|multiclass:K|regression]
//	     [-ops add,sub,mul,div] [-iters 1] [-max-features 0] [-gamma 0]
//	     [-seed 0] [-v]
//
// Out-of-core fitting: -chunk-rows N streams the training CSV in N-row
// chunks through the sharded fit engine (internal/shard), so files larger
// than memory can be fitted; -shards K instead derives the chunk size from
// a row-count pre-pass so the file splits into K partitions. With default
// settings the sharded fit selects the same features as the in-memory fit.
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/buildinfo"
)

func main() {
	var (
		trainPath    = flag.String("train", "", "training CSV path (required)")
		labelCol     = flag.String("label", "label", "label column name")
		testPath     = flag.String("test", "", "optional CSV to transform with the learned pipeline")
		outPath      = flag.String("out", "", "output CSV path for the transformed data (default: stdout summary only)")
		taskFlag     = flag.String("task", "binary", "prediction task: binary, multiclass:K, or regression")
		opsFlag      = flag.String("ops", "add,sub,mul,div", "comma-separated operator names")
		iters        = flag.Int("iters", 1, "number of SAFE iterations (nIter)")
		maxFeatures  = flag.Int("max-features", 0, "output feature budget (0 = 2x original count)")
		gamma        = flag.Int("gamma", 0, "top feature combinations per iteration (0 = 2x original count)")
		seed         = flag.Int64("seed", 0, "random seed")
		verbose      = flag.Bool("v", false, "print per-iteration details")
		savePipeline = flag.String("save-pipeline", "", "write the learned pipeline Ψ as JSON")
		loadPipeline = flag.String("load-pipeline", "", "skip fitting; load Ψ from a JSON file")
		chunkRows    = flag.Int("chunk-rows", 0, "fit out-of-core, streaming the training CSV in chunks of this many rows")
		shards       = flag.Int("shards", 0, "fit out-of-core over this many partitions (chunk size from a row-count pre-pass)")
		version      = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}
	if *trainPath == "" && *loadPipeline == "" {
		fmt.Fprintln(os.Stderr, "safe: -train (or -load-pipeline) is required")
		flag.Usage()
		os.Exit(2)
	}
	task, taskErr := safe.ParseTask(*taskFlag)
	if taskErr != nil {
		fatal(taskErr)
	}

	var (
		train    *safe.Frame
		pipeline *safe.Pipeline
		report   *safe.Report
		err      error
	)
	switch {
	case *loadPipeline != "":
		pipeline, err = safe.LoadPipelineFile(*loadPipeline)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded pipeline: task=%s, %d output features (%d derived)\n",
			pipeline.Task, pipeline.NumFeatures(), pipeline.NumDerived())

	case *chunkRows > 0 || *shards > 0:
		// Sharded out-of-core fit: the training frame never materialises.
		pipeline, report, err = fitSharded(*trainPath, *labelCol, *chunkRows, *shards, buildConfig(*opsFlag, *iters, *maxFeatures, *gamma, *seed, task))
		if err != nil {
			fatal(err)
		}

	default:
		train, err = safe.ReadCSVFile(*trainPath, *labelCol)
		if err != nil {
			fatal(err)
		}
		eng, err := safe.New(buildConfig(*opsFlag, *iters, *maxFeatures, *gamma, *seed, task))
		if err != nil {
			fatal(err)
		}
		pipeline, report, err = eng.Fit(train)
		if err != nil {
			fatal(err)
		}
	}

	if report != nil {
		inCols := len(pipeline.OriginalNames)
		fmt.Printf("SAFE fit complete in %v (task=%s seed=%d): %d input features -> %d output features (%d generated)\n",
			report.Total.Round(1e6), pipeline.Task, *seed, inCols, pipeline.NumFeatures(), pipeline.NumDerived())
		if *verbose {
			for _, ir := range report.Iterations {
				fmt.Printf("  round %d: mined %d combos (vs %d exhaustive), kept %d, generated %d, "+
					"IV-> %d, Pearson-> %d, selected %d (%v)\n",
					ir.Round, ir.CombosMined, ir.SearchSpaceAll, ir.CombosKept, ir.Generated,
					ir.AfterIV, ir.AfterPearson, ir.Selected, ir.Elapsed.Round(1e6))
			}
			fmt.Println("selected features:")
			for _, f := range pipeline.Formulas() {
				fmt.Printf("  %s\n", f)
			}
		}
		if *savePipeline != "" {
			if err := pipeline.SaveFile(*savePipeline); err != nil {
				fatal(err)
			}
			fmt.Printf("saved pipeline to %s\n", *savePipeline)
		}
	}

	target := train
	if *testPath != "" {
		target, err = safe.ReadCSVFile(*testPath, *labelCol)
		if err != nil {
			fatal(err)
		}
	}
	if target == nil {
		if *outPath != "" && (*chunkRows > 0 || *shards > 0) {
			fmt.Println("note: out-of-core fit does not keep the training data in memory; pass -test to transform a dataset")
		}
		return // nothing in memory to transform
	}
	transformed, err := pipeline.Transform(target)
	if err != nil {
		fatal(err)
	}
	if *outPath != "" {
		if err := transformed.WriteCSVFile(*outPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d rows x %d features to %s\n",
			transformed.NumRows(), transformed.NumCols(), *outPath)
	}
}

func buildConfig(ops string, iters, maxFeatures, gamma int, seed int64, task safe.Task) safe.Config {
	cfg := safe.DefaultConfig()
	cfg.Task = task
	cfg.Operators = strings.Split(ops, ",")
	cfg.Iterations = iters
	cfg.MaxFeatures = maxFeatures
	cfg.Gamma = gamma
	cfg.Seed = seed
	return cfg
}

// fitSharded runs the out-of-core fit over a chunked CSV source. When only
// a shard count is given, a counting pre-pass sizes the chunks so the file
// splits into that many partitions.
func fitSharded(path, label string, chunkRows, shards int, cfg safe.Config) (*safe.Pipeline, *safe.Report, error) {
	if chunkRows <= 0 {
		rows, err := countCSVRows(path)
		if err != nil {
			return nil, nil, err
		}
		if rows == 0 {
			return nil, nil, errors.New("safe: training CSV has no rows")
		}
		chunkRows = (rows + shards - 1) / shards
	}
	src, err := safe.OpenCSVChunks(path, label, chunkRows)
	if err != nil {
		return nil, nil, err
	}
	defer src.Close()
	shardCfg := safe.DefaultShardConfig()
	shardCfg.Core = cfg
	pipeline, report, stats, err := safe.FitSharded(src, shardCfg)
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("sharded fit: %d rows in %d partitions of %d rows, %d streaming passes (%d rows streamed)\n",
		stats.Rows, stats.Partitions, chunkRows, stats.Passes, stats.RowsStreamed)
	return pipeline, report, nil
}

// countCSVRows makes one cheap pass counting data records — no per-cell
// float decoding, so the -shards pre-pass costs a fraction of a real pass.
func countCSVRows(path string) (int, error) {
	fh, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer fh.Close()
	cr := csv.NewReader(fh)
	cr.ReuseRecord = true
	if _, err := cr.Read(); err != nil { // header
		return 0, fmt.Errorf("safe: read csv header: %w", err)
	}
	rows := 0
	for {
		_, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, err
		}
		rows++
	}
	return rows, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "safe:", err)
	os.Exit(1)
}
