// Command safe runs the SAFE automatic feature engineering pipeline on a
// labelled CSV file and writes the transformed dataset plus a report of the
// generated features.
//
// Usage:
//
//	safe -train train.csv -label y [-test test.csv] [-out out.csv]
//	     [-task binary|multiclass:K|regression]
//	     [-ops add,sub,mul,div] [-iters 1] [-max-features 0] [-gamma 0]
//	     [-seed 0] [-progress] [-v]
//
// Out-of-core fitting: -chunk-rows N streams the training CSV in N-row
// chunks through the sharded fit engine (internal/shard), so files larger
// than memory can be fitted; -shards K instead derives the chunk size from
// a row-count pre-pass so the file splits into K partitions. With default
// settings the sharded fit selects the same features as the in-memory fit.
// On flaky storage, -retry N re-reads transiently failing chunks up to N
// total attempts with -retry-backoff capped exponential backoff; a
// recovered fit is bit-identical to a fault-free one.
//
// A -train file ending in .col or .colstore (written by safe-convert or
// safe-datagen -format colstore) is opened as a colstore binary columnar
// file and always fits sharded: its row groups are the partitions, float
// columns are served zero-copy via mmap, and per-block statistics let
// refinement passes skip blocks that cannot matter.
//
// Distributed fitting: -distribute host:port[,host:port...] delegates the
// sharded engine's per-partition pass compute to safe-worker processes at
// those addresses. Every worker must be able to open the training file by
// the same path (shared storage); the selection is bit-identical to a local
// fit for any worker count.
//
// A multi-minute fit is observable and interruptible: -progress prints
// each stage of each iteration live as the fit's event stream arrives, and
// Ctrl-C (SIGINT) or SIGTERM cancels the fit promptly through its context
// — the process exits cleanly instead of being killed mid-write.
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/buildinfo"
)

func main() {
	var (
		trainPath    = flag.String("train", "", "training CSV path (required)")
		labelCol     = flag.String("label", "label", "label column name")
		testPath     = flag.String("test", "", "optional CSV to transform with the learned pipeline")
		outPath      = flag.String("out", "", "output CSV path for the transformed data (default: stdout summary only)")
		taskFlag     = flag.String("task", "binary", "prediction task: binary, multiclass:K, or regression")
		opsFlag      = flag.String("ops", "add,sub,mul,div", "comma-separated operator names")
		iters        = flag.Int("iters", 1, "number of SAFE iterations (nIter)")
		maxFeatures  = flag.Int("max-features", 0, "output feature budget (0 = 2x original count)")
		gamma        = flag.Int("gamma", 0, "top feature combinations per iteration (0 = 2x original count)")
		seed         = flag.Int64("seed", 0, "random seed")
		progress     = flag.Bool("progress", false, "print live per-stage progress while fitting")
		verbose      = flag.Bool("v", false, "print per-iteration details incl. stage wall-clock timings")
		savePipeline = flag.String("save-pipeline", "", "write the learned pipeline Ψ as JSON")
		loadPipeline = flag.String("load-pipeline", "", "skip fitting; load Ψ from a JSON file")
		chunkRows    = flag.Int("chunk-rows", 0, "fit out-of-core, streaming the training CSV in chunks of this many rows")
		shards       = flag.Int("shards", 0, "fit out-of-core over this many partitions (chunk size from a row-count pre-pass)")
		retry        = flag.Int("retry", 0, "retry transient chunk-read errors, up to this many total attempts per chunk (sharded fits; 0 = abort on first error)")
		retryBackoff = flag.Duration("retry-backoff", 5*time.Millisecond, "base backoff before the first chunk-read retry, doubling per attempt up to 250ms (with -retry)")
		distribute   = flag.String("distribute", "", "comma-separated safe-worker addresses; delegate pass compute to these workers (train file must be reachable by all)")
		version      = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}
	if *trainPath == "" && *loadPipeline == "" {
		fmt.Fprintln(os.Stderr, "safe: -train (or -load-pipeline) is required")
		flag.Usage()
		os.Exit(2)
	}
	task, taskErr := safe.ParseTask(*taskFlag)
	if taskErr != nil {
		fatal(taskErr)
	}

	// Ctrl-C / SIGTERM cancel the fit through its context: the engines
	// abort at the next stage, candidate, boosting round, or source chunk
	// and Fit returns ctx.Err().
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		pipeline *safe.Pipeline
		report   *safe.Report
		train    *safe.Frame // in-memory fits keep the frame for -out
		err      error
	)
	switch {
	case *loadPipeline != "":
		pipeline, err = safe.LoadPipelineFile(*loadPipeline)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded pipeline: task=%s, %d output features (%d derived)\n",
			pipeline.Task, pipeline.NumFeatures(), pipeline.NumDerived())

	default:
		opts := []safe.Option{
			safe.WithTask(task),
			safe.WithOperators(strings.Split(*opsFlag, ",")...),
			safe.WithIterations(*iters),
			safe.WithBudget(*maxFeatures),
			safe.WithGamma(*gamma),
			safe.WithSeed(*seed),
		}
		if *progress {
			opts = append(opts, safe.WithEvents(printProgress))
		}
		// Sharded out-of-core fits stream the CSV (the training frame
		// never materialises); in-memory fits read it once and keep the
		// frame so -out can transform it without a second parse. When only
		// a shard count is given, a cheap row-count pre-pass sizes the
		// chunks.
		source := safe.FromCSVFile(*trainPath, *labelCol)
		sharded := isColstorePath(*trainPath) || *chunkRows > 0 || *shards > 0 || *distribute != ""
		switch {
		case *retry > 1 && !sharded:
			fmt.Fprintln(os.Stderr, "safe: note: -retry applies to sharded fits only (combine with -chunk-rows/-shards or a .col file); ignoring")
		case *retry > 1:
			opts = append(opts, safe.WithRetry(safe.RetryPolicy{MaxAttempts: *retry, BaseDelay: *retryBackoff}))
		}
		switch {
		case isColstorePath(*trainPath):
			// Binary columnar input (safe-convert / safe-datagen -format
			// colstore): inherently chunked by its row groups, fits
			// sharded with mmap column views and block-stat pass skipping;
			// -chunk-rows/-shards do not apply.
			source = safe.FromColumnFile(*trainPath)
		case *chunkRows > 0 || *shards > 0:
			rows := *chunkRows
			if rows <= 0 {
				rows, err = chunkRowsForShards(*trainPath, *shards)
				if err != nil {
					fatal(err)
				}
			}
			opts = append(opts, safe.WithSharding(rows))
		case *distribute != "":
			// The CSV source stays file-backed so the workers can open it
			// by path; partitioning uses the reader default.
		default:
			train, err = safe.ReadCSVFile(*trainPath, *labelCol)
			if err != nil {
				fatal(err)
			}
			source = safe.FromFrame(train)
		}
		if *distribute != "" {
			opts = append(opts, safe.WithDistributed(strings.Split(*distribute, ",")...))
		}
		var res *safe.Result
		res, err = safe.Fit(ctx, source, opts...)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "safe: fit cancelled:", err)
				os.Exit(130)
			}
			fatal(err)
		}
		pipeline, report = res.Pipeline, res.Report
		if st := res.Shard; st != nil {
			fmt.Printf("sharded fit: %d rows in %d partitions, %d streaming passes (%d rows streamed)\n",
				st.Rows, st.Partitions, st.Passes, st.RowsStreamed)
			if st.BlocksSkipped > 0 {
				fmt.Printf("  block stats skipped %d blocks (%d rows never read)\n",
					st.BlocksSkipped, st.RowsSkipped)
			}
			if st.Retries > 0 {
				fmt.Printf("  %d transient chunk reads retried\n", st.Retries)
			}
		}
	}

	if report != nil {
		inCols := len(pipeline.OriginalNames)
		fmt.Printf("SAFE fit complete in %v (task=%s seed=%d): %d input features -> %d output features (%d generated)\n",
			report.Total.Round(1e6), pipeline.Task, *seed, inCols, pipeline.NumFeatures(), pipeline.NumDerived())
		if *verbose || *progress {
			for _, ir := range report.Iterations {
				fmt.Printf("  round %d: mined %d combos (vs %d exhaustive), kept %d, generated %d, "+
					"IV-> %d, Pearson-> %d, selected %d (%v)\n",
					ir.Round, ir.CombosMined, ir.SearchSpaceAll, ir.CombosKept, ir.Generated,
					ir.AfterIV, ir.AfterPearson, ir.Selected, ir.Elapsed.Round(1e6))
				fmt.Printf("    stage times: mine=%v score=%v generate=%v iv=%v pearson=%v rank=%v\n",
					ir.MineTime.Round(1e6), ir.ScoreTime.Round(1e6), ir.GenerateTime.Round(1e6),
					ir.IVTime.Round(1e6), ir.PearsonTime.Round(1e6), ir.RankTime.Round(1e6))
			}
		}
		if *verbose {
			fmt.Println("selected features:")
			for _, f := range pipeline.Formulas() {
				fmt.Printf("  %s\n", f)
			}
		}
		if *savePipeline != "" {
			if err := pipeline.SaveFile(*savePipeline); err != nil {
				fatal(err)
			}
			fmt.Printf("saved pipeline to %s\n", *savePipeline)
		}
	}

	var target *safe.Frame
	switch {
	case *testPath != "":
		target, err = safe.ReadCSVFile(*testPath, *labelCol)
		if err != nil {
			fatal(err)
		}
	case *outPath != "":
		// The in-memory fit path transforms its own (already-read)
		// training frame; train is nil for out-of-core and loaded runs.
		target = train
	}
	if target == nil {
		if *outPath != "" && (*chunkRows > 0 || *shards > 0) {
			fmt.Println("note: out-of-core fit does not keep the training data in memory; pass -test to transform a dataset")
		}
		return // nothing in memory to transform
	}
	transformed, err := pipeline.Transform(target)
	if err != nil {
		fatal(err)
	}
	if *outPath != "" {
		if err := transformed.WriteCSVFile(*outPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d rows x %d features to %s\n",
			transformed.NumRows(), transformed.NumCols(), *outPath)
	}
}

// printProgress renders the fit's event stream as live stage lines on
// stderr (stdout stays machine-consumable for -out summaries).
func printProgress(ev safe.FitEvent) {
	switch ev.Kind {
	case safe.EventIterationStart:
		fmt.Fprintf(os.Stderr, "round %d: %d live features\n", ev.Round, ev.Candidates)
	case safe.EventStageEnd:
		fmt.Fprintf(os.Stderr, "  %-9s %6d -> %-6d %8v  (%d rows processed)\n",
			ev.Stage, ev.Candidates, ev.Survivors, ev.Elapsed.Round(1e6), ev.Rows)
	case safe.EventIterationEnd:
		fmt.Fprintf(os.Stderr, "round %d done: %d features selected in %v\n",
			ev.Round, ev.Survivors, ev.Elapsed.Round(1e6))
	}
}

// chunkRowsForShards sizes chunks so the file splits into the requested
// number of partitions, from one cheap pass counting data records — no
// per-cell float decoding, so the pre-pass costs a fraction of a real pass.
func chunkRowsForShards(path string, shards int) (int, error) {
	rows, err := countCSVRows(path)
	if err != nil {
		return 0, err
	}
	if rows == 0 {
		return 0, errors.New("safe: training CSV has no rows")
	}
	return (rows + shards - 1) / shards, nil
}

func countCSVRows(path string) (int, error) {
	fh, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer fh.Close()
	cr := csv.NewReader(fh)
	cr.ReuseRecord = true
	if _, err := cr.Read(); err != nil { // header
		return 0, fmt.Errorf("safe: read csv header: %w", err)
	}
	rows := 0
	for {
		_, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, err
		}
		rows++
	}
	return rows, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "safe:", err)
	os.Exit(1)
}

// isColstorePath reports whether the training file is a colstore binary
// columnar file, selected by extension like every other format here.
func isColstorePath(path string) bool {
	return strings.HasSuffix(path, ".col") || strings.HasSuffix(path, ".colstore")
}
