// Command safe runs the SAFE automatic feature engineering pipeline on a
// labelled CSV file and writes the transformed dataset plus a report of the
// generated features.
//
// Usage:
//
//	safe -train train.csv -label y [-test test.csv] [-out out.csv]
//	     [-ops add,sub,mul,div] [-iters 1] [-max-features 0] [-gamma 0]
//	     [-seed 0] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		trainPath    = flag.String("train", "", "training CSV path (required)")
		labelCol     = flag.String("label", "label", "label column name")
		testPath     = flag.String("test", "", "optional CSV to transform with the learned pipeline")
		outPath      = flag.String("out", "", "output CSV path for the transformed data (default: stdout summary only)")
		opsFlag      = flag.String("ops", "add,sub,mul,div", "comma-separated operator names")
		iters        = flag.Int("iters", 1, "number of SAFE iterations (nIter)")
		maxFeatures  = flag.Int("max-features", 0, "output feature budget (0 = 2x original count)")
		gamma        = flag.Int("gamma", 0, "top feature combinations per iteration (0 = 2x original count)")
		seed         = flag.Int64("seed", 0, "random seed")
		verbose      = flag.Bool("v", false, "print per-iteration details")
		savePipeline = flag.String("save-pipeline", "", "write the learned pipeline Ψ as JSON")
		loadPipeline = flag.String("load-pipeline", "", "skip fitting; load Ψ from a JSON file")
	)
	flag.Parse()
	if *trainPath == "" && *loadPipeline == "" {
		fmt.Fprintln(os.Stderr, "safe: -train (or -load-pipeline) is required")
		flag.Usage()
		os.Exit(2)
	}

	var (
		train    *safe.Frame
		pipeline *safe.Pipeline
		err      error
	)
	if *loadPipeline != "" {
		pipeline, err = safe.LoadPipelineFile(*loadPipeline)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded pipeline: %d output features (%d derived)\n",
			pipeline.NumFeatures(), pipeline.NumDerived())
	} else {
		train, err = safe.ReadCSVFile(*trainPath, *labelCol)
		if err != nil {
			fatal(err)
		}

		cfg := safe.DefaultConfig()
		cfg.Operators = strings.Split(*opsFlag, ",")
		cfg.Iterations = *iters
		cfg.MaxFeatures = *maxFeatures
		cfg.Gamma = *gamma
		cfg.Seed = *seed

		eng, err := safe.New(cfg)
		if err != nil {
			fatal(err)
		}
		var report *safe.Report
		pipeline, report, err = eng.Fit(train)
		if err != nil {
			fatal(err)
		}

		fmt.Printf("SAFE fit complete in %v: %d input features -> %d output features (%d generated)\n",
			report.Total.Round(1e6), train.NumCols(), pipeline.NumFeatures(), pipeline.NumDerived())
		if *verbose {
			for _, ir := range report.Iterations {
				fmt.Printf("  round %d: mined %d combos (vs %d exhaustive), kept %d, generated %d, "+
					"IV-> %d, Pearson-> %d, selected %d (%v)\n",
					ir.Round, ir.CombosMined, ir.SearchSpaceAll, ir.CombosKept, ir.Generated,
					ir.AfterIV, ir.AfterPearson, ir.Selected, ir.Elapsed.Round(1e6))
			}
			fmt.Println("selected features:")
			for _, f := range pipeline.Formulas() {
				fmt.Printf("  %s\n", f)
			}
		}
		if *savePipeline != "" {
			if err := pipeline.SaveFile(*savePipeline); err != nil {
				fatal(err)
			}
			fmt.Printf("saved pipeline to %s\n", *savePipeline)
		}
	}

	target := train
	if *testPath != "" {
		target, err = safe.ReadCSVFile(*testPath, *labelCol)
		if err != nil {
			fatal(err)
		}
	}
	if target == nil {
		return // -load-pipeline without -train/-test: nothing to transform
	}
	transformed, err := pipeline.Transform(target)
	if err != nil {
		fatal(err)
	}
	if *outPath != "" {
		if err := transformed.WriteCSVFile(*outPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d rows x %d features to %s\n",
			transformed.NumRows(), transformed.NumCols(), *outPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "safe:", err)
	os.Exit(1)
}
