// Command safe-serve runs the online serving layer: a registry of named,
// versioned pipelines behind batched /transform and /predict endpoints,
// with an optional feature cache, request metrics, and hot-swappable
// versions (Section IV-E3 of the paper at production shape).
//
// Serve a model directory (dir/<name>/<version>/pipeline.json, optional
// model.json per version; lexically greatest version starts active):
//
//	safe-serve -models ./models [-addr :8080] [-max-batch 4096] [-cache 65536]
//
// Or serve a single pipeline file (the v1 invocation still works):
//
//	safe-serve -pipeline pipeline.json [-model model.json] [-name risk] [-version v1]
//
// Routes:
//
//	POST /transform        {"pipeline":"risk","rows":[[...],...]}
//	POST /predict          same, plus model scores
//	POST /score            {"row":[...]} or {"values":{"x0":1,...}}
//	POST /admin/activate   {"pipeline":"risk","version":"v2"}
//	GET  /pipelines /schema /stats /healthz
//
// See docs/serving.md for the full API contract.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/gbdt"
	"repro/internal/serve"
)

func main() {
	var (
		modelsDir    = flag.String("models", "", "model directory: <name>/<version>/pipeline.json [+ model.json]")
		pipelinePath = flag.String("pipeline", "", "single pipeline JSON (alternative to -models)")
		modelPath    = flag.String("model", "", "optional GBDT model JSON for -pipeline")
		name         = flag.String("name", "default", "registry name for -pipeline")
		version      = flag.String("version", "v1", "registry version for -pipeline")
		addr         = flag.String("addr", ":8080", "listen address")
		maxBatch     = flag.Int("max-batch", serve.DefaultMaxBatch, "max rows per /transform or /predict request")
		maxBody      = flag.Int64("max-body", serve.DefaultMaxBodyBytes, "max request body size in bytes")
		cacheSize    = flag.Int("cache", 0, "feature cache capacity in rows (0 disables)")
	)
	flag.Parse()
	if *modelsDir == "" && *pipelinePath == "" {
		fmt.Fprintln(os.Stderr, "safe-serve: one of -models or -pipeline is required")
		flag.Usage()
		os.Exit(2)
	}

	reg := serve.NewRegistry()
	if *modelsDir != "" {
		n, err := reg.LoadDir(*modelsDir)
		if err != nil {
			log.Fatalf("safe-serve: %v", err)
		}
		log.Printf("safe-serve: loaded %d pipeline version(s) from %s", n, *modelsDir)
	}
	if *pipelinePath != "" {
		pipeline, err := core.LoadPipelineFile(*pipelinePath)
		if err != nil {
			log.Fatalf("safe-serve: %v", err)
		}
		var model *gbdt.Model
		if *modelPath != "" {
			if model, err = gbdt.LoadFile(*modelPath); err != nil {
				log.Fatalf("safe-serve: %v", err)
			}
		}
		if err := reg.Register(*name, *version, pipeline, model); err != nil {
			log.Fatalf("safe-serve: %v", err)
		}
	}

	for _, info := range reg.Snapshot() {
		log.Printf("safe-serve: pipeline %q versions=%v active=%s task=%s inputs=%d outputs=%d model=%v",
			info.Name, info.Versions, info.Active, info.Task, info.Inputs, info.Outputs, info.HasModel)
	}
	s := serve.NewServer(reg, serve.Options{
		MaxBatch: *maxBatch, MaxBodyBytes: *maxBody, CacheSize: *cacheSize,
	})
	log.Printf("safe-serve: listening on %s (max-batch %d, cache %d)", *addr, *maxBatch, *cacheSize)
	log.Fatal(http.ListenAndServe(*addr, s))
}
