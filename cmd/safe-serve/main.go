// Command safe-serve runs the real-time inference HTTP service of
// Section IV-E3: it loads a pipeline Ψ saved by `safe -save-pipeline` (and
// optionally a GBDT model trained on Ψ's output) and scores raw feature
// rows per request.
//
//	safe-serve -pipeline pipeline.json [-model model.json] [-addr :8080]
//
// Routes:
//
//	POST /score   {"row":[...]} or {"values":{"x0":1,...}}
//	GET  /schema
//	GET  /healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/gbdt"
	"repro/internal/serve"
)

func main() {
	var (
		pipelinePath = flag.String("pipeline", "", "pipeline JSON (required)")
		modelPath    = flag.String("model", "", "optional GBDT model JSON")
		addr         = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	if *pipelinePath == "" {
		fmt.Fprintln(os.Stderr, "safe-serve: -pipeline is required")
		flag.Usage()
		os.Exit(2)
	}

	pipeline, err := core.LoadPipelineFile(*pipelinePath)
	if err != nil {
		log.Fatalf("safe-serve: %v", err)
	}
	var model *gbdt.Model
	if *modelPath != "" {
		model, err = gbdt.LoadFile(*modelPath)
		if err != nil {
			log.Fatalf("safe-serve: %v", err)
		}
	}
	h, err := serve.NewHandler(pipeline, model)
	if err != nil {
		log.Fatalf("safe-serve: %v", err)
	}
	log.Printf("safe-serve: %d inputs -> %d features (model: %v), listening on %s",
		len(pipeline.OriginalNames), pipeline.NumFeatures(), model != nil, *addr)
	log.Fatal(http.ListenAndServe(*addr, h))
}
