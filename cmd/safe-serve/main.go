// Command safe-serve runs the online serving layer: a registry of named,
// versioned pipelines behind batched /transform and /predict endpoints,
// with an optional feature cache, request metrics, and hot-swappable
// versions (Section IV-E3 of the paper at production shape).
//
// Serve a model directory (dir/<name>/<version>/pipeline.json, optional
// model.json per version; lexically greatest version starts active):
//
//	safe-serve -models ./models [-addr :8080] [-max-batch 4096] [-cache 65536]
//
// Or serve a single pipeline file (the v1 invocation still works):
//
//	safe-serve -pipeline pipeline.json [-model model.json] [-name risk] [-version v1]
//
// Routes:
//
//	POST /transform        {"pipeline":"risk","rows":[[...],...]}
//	POST /predict          same, plus model scores
//	POST /score            {"row":[...]} or {"values":{"x0":1,...}}
//	POST /admin/activate   {"pipeline":"risk","version":"v2"}
//	GET  /pipelines /schema /stats /healthz
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes,
// in-flight batched requests drain for up to -shutdown-timeout, then the
// process exits cleanly. See docs/serving.md for the full API contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/gbdt"
	"repro/internal/serve"
)

func main() {
	var (
		modelsDir    = flag.String("models", "", "model directory: <name>/<version>/pipeline.json [+ model.json]")
		pipelinePath = flag.String("pipeline", "", "single pipeline JSON (alternative to -models)")
		modelPath    = flag.String("model", "", "optional GBDT model JSON for -pipeline")
		name         = flag.String("name", "default", "registry name for -pipeline")
		version      = flag.String("version", "v1", "registry version for -pipeline")
		addr         = flag.String("addr", ":8080", "listen address")
		maxBatch     = flag.Int("max-batch", serve.DefaultMaxBatch, "max rows per /transform or /predict request")
		maxBody      = flag.Int64("max-body", serve.DefaultMaxBodyBytes, "max request body size in bytes")
		cacheSize    = flag.Int("cache", 0, "feature cache capacity in rows (0 disables)")
		drainWait    = flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown deadline: how long in-flight requests may drain after SIGINT/SIGTERM")
	)
	flag.Parse()
	if *modelsDir == "" && *pipelinePath == "" {
		fmt.Fprintln(os.Stderr, "safe-serve: one of -models or -pipeline is required")
		flag.Usage()
		os.Exit(2)
	}

	// The signal context covers the whole lifecycle: a SIGINT/SIGTERM during
	// the model-directory warm load aborts it promptly, and after startup
	// the same signal begins the graceful drain below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := serve.NewRegistry()
	if *modelsDir != "" {
		n, err := reg.LoadDirContext(ctx, *modelsDir)
		if err != nil {
			log.Fatalf("safe-serve: %v (after %d version(s))", err, n)
		}
		log.Printf("safe-serve: loaded %d pipeline version(s) from %s", n, *modelsDir)
	}
	if *pipelinePath != "" {
		pipeline, err := core.LoadPipelineFile(*pipelinePath)
		if err != nil {
			log.Fatalf("safe-serve: %v", err)
		}
		var model *gbdt.Model
		if *modelPath != "" {
			if model, err = gbdt.LoadFile(*modelPath); err != nil {
				log.Fatalf("safe-serve: %v", err)
			}
		}
		if err := reg.Register(*name, *version, pipeline, model); err != nil {
			log.Fatalf("safe-serve: %v", err)
		}
	}

	for _, info := range reg.Snapshot() {
		log.Printf("safe-serve: pipeline %q versions=%v active=%s task=%s inputs=%d outputs=%d model=%v",
			info.Name, info.Versions, info.Active, info.Task, info.Inputs, info.Outputs, info.HasModel)
	}
	s := serve.NewServer(reg, serve.Options{
		MaxBatch: *maxBatch, MaxBodyBytes: *maxBody, CacheSize: *cacheSize,
	})
	srv := &http.Server{Addr: *addr, Handler: s}

	// Graceful shutdown: SIGINT/SIGTERM stop accepting new connections and
	// drain in-flight (batched) requests up to -shutdown-timeout, so a
	// deploy or Ctrl-C never kills the process mid-request.
	errCh := make(chan error, 1)
	go func() {
		log.Printf("safe-serve: listening on %s (max-batch %d, cache %d)", *addr, *maxBatch, *cacheSize)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("safe-serve: %v", err)
	case <-ctx.Done():
		stop() // restore default signal behaviour: a second Ctrl-C kills
		log.Printf("safe-serve: shutdown signal received; draining in-flight requests (up to %v)", *drainWait)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("safe-serve: drain deadline exceeded, closing: %v", err)
			srv.Close() //nolint:errcheck // best-effort teardown after a failed drain
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("safe-serve: %v", err)
		}
		log.Printf("safe-serve: shutdown complete")
	}
}
