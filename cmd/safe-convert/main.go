// Command safe-convert moves datasets between CSV and the colstore binary
// columnar format (internal/colstore), and inspects colstore files.
//
// Usage:
//
//	safe-convert -in train.csv -out train.col [-label label] [-group-rows 8192]
//	safe-convert -in train.col -out train.csv
//	safe-convert -describe train.col
//
// The direction follows the file extensions: a .csv input with a .col (or
// .colstore) output converts CSV→colstore, sniffing each column's type from
// the data (any non-numeric cell makes a column a dictionary-encoded string
// column; empty cells are nulls). The reverse emits CSV with the same cell
// conventions the rest of the toolchain writes (shortest round-trip floats,
// empty cells for NaN/null), so converting back and forth is lossless.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/colstore"
)

func main() {
	var (
		in        = flag.String("in", "", "input file (.csv or .col)")
		out       = flag.String("out", "", "output file (.csv or .col)")
		label     = flag.String("label", "label", "label column name (CSV input)")
		groupRows = flag.Int("group-rows", 0, "rows per colstore row group (0 = default)")
		describe  = flag.String("describe", "", "print the layout of a colstore file and exit")
		version   = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}
	if *describe != "" {
		if err := colstore.Describe(*describe, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("need -in and -out (or -describe); see -help"))
	}

	switch {
	case isCSV(*in) && isCol(*out):
		schema, err := colstore.SniffCSV(*in, *label)
		if err != nil {
			fatal(err)
		}
		rows, err := colstore.ConvertCSV(*in, *out, schema, colstore.WriterOptions{GroupRows: *groupRows})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d rows, %d columns)\n", *out, rows, len(schema))
	case isCol(*in) && isCSV(*out):
		tab, err := colstore.ReadTable(*in)
		if err != nil {
			fatal(err)
		}
		if err := tab.WriteCSVFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d rows, %d columns)\n", *out, tab.Rows, len(tab.Schema))
	default:
		fatal(fmt.Errorf("cannot infer direction from %q -> %q: want .csv<->.col", *in, *out))
	}
}

func isCSV(path string) bool { return strings.HasSuffix(path, ".csv") }

func isCol(path string) bool {
	return strings.HasSuffix(path, ".col") || strings.HasSuffix(path, ".colstore")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "safe-convert:", err)
	os.Exit(1)
}
