// Command safe-worker serves distributed fit sessions: it listens for
// coordinator connections (safe -distribute, or safe.WithDistributed) and
// computes per-partition pass partials over the internal/dist wire
// protocol. The worker opens the training file itself — by the path the
// coordinator names — so it must see the same file content, typically via
// shared storage.
//
// Usage:
//
//	safe-worker [-listen :7070] [-v]
//
// One worker process serves any number of concurrent fits; each connection
// gets its own dataset handle and pass state. SIGINT or SIGTERM drains
// cleanly: in-flight sessions are cancelled through their context, the
// listener closes, and the process exits once every session has unwound.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/buildinfo"
	"repro/internal/dist"
)

func main() {
	var (
		listen  = flag.String("listen", ":7070", "TCP address to listen on for coordinator connections")
		verbose = flag.Bool("v", false, "log session starts and ends")
		version = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := dist.NewServer(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "safe-worker:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "safe-worker: listening on %s (protocol v%d)\n", srv.Addr(), dist.Version)
	}
	err = srv.Serve(ctx)
	if ctx.Err() != nil {
		if *verbose {
			fmt.Fprintln(os.Stderr, "safe-worker: signal received, drained and exiting")
		}
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "safe-worker:", err)
		os.Exit(1)
	}
}
