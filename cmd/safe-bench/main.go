// Command safe-bench regenerates the tables and figures of the SAFE paper's
// evaluation (Section V) on the synthetic data substrate.
//
// Usage:
//
//	safe-bench -experiment all                 # everything, reduced scale
//	safe-bench -experiment table3 -scale 1     # Table III at paper scale
//	safe-bench -experiment table5,table6
//	safe-bench -experiment table8 -business-scale 0.01
//	safe-bench -experiment fig3,fig4,searchspace,assumptions
//	safe-bench -datasets banknote,magic -clfs LR,XGB -repeats 5
//
// Experiments: table3, table5, table6, table8, fig3, fig4, searchspace,
// assumptions, ablation, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		expFlag       = flag.String("experiment", "all", "comma-separated experiment ids")
		scale         = flag.Float64("scale", 0.1, "benchmark dataset row scale (0,1]; 1 = paper sizes")
		businessScale = flag.Float64("business-scale", 0.005, "business dataset row scale; 1 = paper's 2.5M-8M rows")
		repeats       = flag.Int("repeats", 3, "seeds averaged per cell (paper: 100/10)")
		trials        = flag.Int("stability-trials", 20, "repeated runs for Table VI (paper: 100)")
		rounds        = flag.Int("rounds", 5, "iteration rounds for Fig. 4")
		datasets      = flag.String("datasets", "", "comma-separated dataset subset (default: all 12)")
		clfs          = flag.String("clfs", "", "comma-separated classifier subset (default: all 9)")
		seed          = flag.Int64("seed", 0, "base random seed")
		jsonDir       = flag.String("json", "", "also write structured results as JSON into this directory")
	)
	flag.Parse()

	opts := experiments.Options{
		Scale:         *scale,
		BusinessScale: *businessScale,
		Repeats:       *repeats,
		Seed:          *seed,
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}
	if *clfs != "" {
		opts.Classifiers = strings.Split(*clfs, ",")
	}

	run := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		run[strings.TrimSpace(e)] = true
	}
	if run["all"] {
		for _, e := range []string{"table3", "table5", "table6", "table8", "fig3", "fig4", "searchspace", "assumptions", "ablation"} {
			run[e] = true
		}
	}

	w := os.Stdout
	export := func(name string, v interface{}, err error) {
		check(err)
		if *jsonDir != "" {
			check(experiments.ExportJSON(*jsonDir, name, v))
		}
	}
	if run["table3"] {
		res, err := experiments.RunTable3(opts, w)
		export("table3", res, err)
	}
	if run["table5"] {
		res, err := experiments.RunTable5(opts, w)
		export("table5", res, err)
	}
	if run["table6"] {
		res, err := experiments.RunTable6(opts, *trials, w)
		export("table6", res, err)
	}
	if run["table8"] {
		res, err := experiments.RunTable8(opts, w)
		export("table8", res, err)
	}
	if run["fig3"] {
		res, err := experiments.RunFig3(opts, w)
		export("fig3", res, err)
	}
	if run["fig4"] {
		res, err := experiments.RunFig4(opts, *rounds, w)
		export("fig4", res, err)
	}
	if run["searchspace"] {
		res, err := experiments.RunSearchSpace(opts, w)
		export("searchspace", res, err)
	}
	if run["assumptions"] {
		res, err := experiments.RunAssumptions(opts, 20, w)
		export("assumptions", res, err)
	}
	if run["ablation"] {
		res, err := experiments.RunAblation(opts, w)
		export("ablation", res, err)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "safe-bench:", err)
		os.Exit(1)
	}
}
