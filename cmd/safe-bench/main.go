// Command safe-bench regenerates the tables and figures of the SAFE paper's
// evaluation (Section V) on the synthetic data substrate.
//
// Usage:
//
//	safe-bench -experiment all                 # everything, reduced scale
//	safe-bench -experiment table3 -scale 1     # Table III at paper scale
//	safe-bench -experiment table5,table6
//	safe-bench -experiment table8 -business-scale 0.01
//	safe-bench -experiment fig3,fig4,searchspace,assumptions
//	safe-bench -datasets banknote,magic -clfs LR,XGB -repeats 5
//	safe-bench -experiment serving -serve-clients 8 -serve-batch 128
//	safe-bench -experiment fit                  # full fit workload matrix
//	safe-bench -experiment fit -task regression # one task's cells only
//	safe-bench -experiment shardfit -source colstore   # one chunk source's cells only
//	safe-bench -experiment distfit              # distributed fit over pipe + loopback TCP workers
//	safe-bench -experiment fit -quick -bench-compare   # the CI smoke gate
//
// Experiments: table3, table5, table6, table8, fig3, fig4, searchspace,
// assumptions, ablation, serving, fit, all.
//
// The serving experiment trains a pipeline + GBDT model, stands up the
// internal/serve HTTP server in-process, and drives concurrent batched
// /predict load against it, reporting sustained rows/sec and latency
// quantiles.
//
// The fit experiment is the repository's perf harness (internal/benchkit):
// it runs the fixed synthetic fit workload matrix, reports rows/sec and
// allocation behaviour per cell, and maintains the BENCH_fit.json
// trajectory. With -bench-compare it exits non-zero when throughput
// regresses more than -bench-tolerance against the latest recorded run —
// the check CI's bench-smoke job gates on. See docs/performance.md.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/benchkit"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/gbdt"
	"repro/internal/serve"
)

func main() {
	var (
		expFlag       = flag.String("experiment", "all", "comma-separated experiment ids")
		scale         = flag.Float64("scale", 0.1, "benchmark dataset row scale (0,1]; 1 = paper sizes")
		businessScale = flag.Float64("business-scale", 0.005, "business dataset row scale; 1 = paper's 2.5M-8M rows")
		repeats       = flag.Int("repeats", 3, "seeds averaged per cell (paper: 100/10)")
		trials        = flag.Int("stability-trials", 20, "repeated runs for Table VI (paper: 100)")
		rounds        = flag.Int("rounds", 5, "iteration rounds for Fig. 4")
		datasets      = flag.String("datasets", "", "comma-separated dataset subset (default: all 12)")
		clfs          = flag.String("clfs", "", "comma-separated classifier subset (default: all 9)")
		seed          = flag.Int64("seed", 0, "base random seed")
		jsonDir       = flag.String("json", "", "also write structured results as JSON into this directory")
		serveClients  = flag.Int("serve-clients", 4, "concurrent clients for the serving experiment")
		serveBatch    = flag.Int("serve-batch", 128, "rows per request for the serving experiment")
		serveRequests = flag.Int("serve-requests", 100, "requests per client for the serving experiment")
		serveCache    = flag.Int("serve-cache", 0, "feature cache capacity for the serving experiment (0 disables)")
		quick         = flag.Bool("quick", false, "fit experiment: run only the quick (CI smoke) workload subset")
		benchFile     = flag.String("bench-file", "BENCH_fit.json", "fit experiment: trajectory file to load and compare against")
		benchLabel    = flag.String("bench-label", "", "fit experiment: label for this run (default: quick/full)")
		benchAppend   = flag.Bool("bench-append", false, "fit experiment: append this run to -bench-file")
		benchOut      = flag.String("bench-out", "", "fit experiment: also write this run (as a one-run trajectory) to this path")
		benchCompare  = flag.Bool("bench-compare", false, "fit experiment: exit non-zero when throughput regresses beyond -bench-tolerance vs the latest run in -bench-file")
		benchTol      = flag.Float64("bench-tolerance", 0.20, "fit experiment: allowed fractional throughput regression")
		benchRepeats  = flag.Int("bench-repeats", 3, "fit experiment: measurements per cell; the fastest is kept")
		benchTask     = flag.String("task", "", "fit experiment: run only cells of this task (binary, multiclass:K, regression; default all)")
		benchSource   = flag.String("source", "", "fit experiment: run only cells of this chunk source (frame, csv, colstore; default all)")
		version       = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	opts := experiments.Options{
		Scale:         *scale,
		BusinessScale: *businessScale,
		Repeats:       *repeats,
		Seed:          *seed,
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}
	if *clfs != "" {
		opts.Classifiers = strings.Split(*clfs, ",")
	}

	run := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		run[strings.TrimSpace(e)] = true
	}
	if run["all"] {
		for _, e := range []string{"table3", "table5", "table6", "table8", "fig3", "fig4", "searchspace", "assumptions", "ablation", "serving", "fit", "shardfit", "distfit"} {
			run[e] = true
		}
	}
	fmt.Printf("safe-bench %s seed=%d\n", buildinfo.String(), *seed)

	w := os.Stdout
	export := func(name string, v interface{}, err error) {
		check(err)
		if *jsonDir != "" {
			check(experiments.ExportJSON(*jsonDir, name, v))
		}
	}
	if run["table3"] {
		res, err := experiments.RunTable3(opts, w)
		export("table3", res, err)
	}
	if run["table5"] {
		res, err := experiments.RunTable5(opts, w)
		export("table5", res, err)
	}
	if run["table6"] {
		res, err := experiments.RunTable6(opts, *trials, w)
		export("table6", res, err)
	}
	if run["table8"] {
		res, err := experiments.RunTable8(opts, w)
		export("table8", res, err)
	}
	if run["fig3"] {
		res, err := experiments.RunFig3(opts, w)
		export("fig3", res, err)
	}
	if run["fig4"] {
		res, err := experiments.RunFig4(opts, *rounds, w)
		export("fig4", res, err)
	}
	if run["searchspace"] {
		res, err := experiments.RunSearchSpace(opts, w)
		export("searchspace", res, err)
	}
	if run["assumptions"] {
		res, err := experiments.RunAssumptions(opts, 20, w)
		export("assumptions", res, err)
	}
	if run["ablation"] {
		res, err := experiments.RunAblation(opts, w)
		export("ablation", res, err)
	}
	if run["serving"] {
		res, err := runServing(servingOptions{
			Clients:   *serveClients,
			Batch:     *serveBatch,
			Requests:  *serveRequests,
			CacheSize: *serveCache,
			Seed:      *seed,
		}, w)
		export("serving", res, err)
	}
	if run["fit"] || run["shardfit"] || run["distfit"] {
		res, err := runFitBench(fitBenchOptions{
			Fit:       run["fit"],
			ShardFit:  run["shardfit"],
			DistFit:   run["distfit"],
			Quick:     *quick,
			Task:      *benchTask,
			Source:    *benchSource,
			File:      *benchFile,
			Label:     *benchLabel,
			Append:    *benchAppend,
			Out:       *benchOut,
			Compare:   *benchCompare,
			Tolerance: *benchTol,
			Repeats:   *benchRepeats,
			Seed:      *seed,
		}, w)
		export("fit", res, err)
	}
}

type fitBenchOptions struct {
	Fit       bool // include the in-memory fit matrix
	ShardFit  bool // include the sharded out-of-core fit matrix
	DistFit   bool // include the distributed (wire-protocol) fit matrix
	Quick     bool
	Task      string // restrict to cells of one task ("" = all)
	Source    string // restrict to cells of one chunk source ("" = all; "frame" = in-memory chunks)
	File      string
	Label     string
	Append    bool
	Out       string
	Compare   bool
	Tolerance float64
	Repeats   int
	Seed      int64
}

// runFitBench runs the fit (and/or sharded fit) workload matrix, prints
// per-cell throughput, maintains the BENCH_fit.json trajectory, and
// enforces the regression gate.
func runFitBench(opts fitBenchOptions, w io.Writer) (*benchkit.Run, error) {
	var matrix []benchkit.FitWorkload
	if opts.Fit {
		if opts.Quick {
			matrix = append(matrix, benchkit.QuickFitMatrix()...)
		} else {
			matrix = append(matrix, benchkit.FitMatrix()...)
		}
	}
	if opts.ShardFit {
		if opts.Quick {
			matrix = append(matrix, benchkit.QuickShardFitMatrix()...)
		} else {
			matrix = append(matrix, benchkit.ShardFitMatrix()...)
		}
	}
	if opts.DistFit {
		if opts.Quick {
			matrix = append(matrix, benchkit.QuickDistFitMatrix()...)
		} else {
			matrix = append(matrix, benchkit.DistFitMatrix()...)
		}
	}
	if opts.Task != "" {
		want, err := core.ParseTask(opts.Task)
		if err != nil {
			return nil, err
		}
		var filtered []benchkit.FitWorkload
		for _, cell := range matrix {
			have, err := core.ParseTask(cell.Task)
			if err != nil {
				return nil, err
			}
			if have == want {
				filtered = append(filtered, cell)
			}
		}
		if len(filtered) == 0 {
			return nil, fmt.Errorf("no workload cells match -task %s; measuring nothing would pass the gate vacuously", want)
		}
		matrix = filtered
	}
	if opts.Source != "" {
		want := opts.Source
		if want == "frame" { // the in-memory chunk source is the empty Source
			want = ""
		} else if want != "csv" && want != "colstore" {
			return nil, fmt.Errorf("unknown -source %q (want frame, csv, or colstore)", opts.Source)
		}
		var filtered []benchkit.FitWorkload
		for _, cell := range matrix {
			if cell.Source == want {
				filtered = append(filtered, cell)
			}
		}
		if len(filtered) == 0 {
			return nil, fmt.Errorf("no workload cells match -source %s; measuring nothing would pass the gate vacuously", opts.Source)
		}
		matrix = filtered
	}
	label := opts.Label
	if label == "" {
		label = "full"
		if opts.Quick {
			label = "quick"
		}
	}

	hist, err := benchkit.Load(opts.File)
	if err != nil {
		return nil, err
	}
	prev := hist.Latest()
	base := hist.Baseline()

	cur := benchkit.NewRun(label, opts.Seed)
	fmt.Fprintf(w, "\nFit throughput (synthetic workload matrix, GOMAXPROCS=%d)\n", cur.GOMAXPROCS)
	for _, cell := range matrix {
		res, err := benchkit.RunFitBest(cell, opts.Repeats)
		if err != nil {
			return nil, err
		}
		cur.Results = append(cur.Results, res)
		fmt.Fprintf(w, "  %-12s %8.0f rows/sec  %6.2fs  alloc=%7.1fMB  peak=%6.1fMB  selected=%d",
			res.Workload, res.RowsPerSec, res.Seconds, res.AllocMB, res.PeakHeapMB, res.Selected)
		if ref := base.Find(res.Workload); ref != nil && ref.RowsPerSec > 0 && base != prev {
			fmt.Fprintf(w, "  (%.2fx vs baseline %q)", res.RowsPerSec/ref.RowsPerSec, base.Label)
		}
		if ref := prev.Find(res.Workload); ref != nil && ref.RowsPerSec > 0 {
			fmt.Fprintf(w, "  (%.2fx vs latest %q)", res.RowsPerSec/ref.RowsPerSec, prev.Label)
		}
		fmt.Fprintln(w)
	}

	regressions := benchkit.Compare(prev, &cur, opts.Tolerance)
	for _, r := range regressions {
		fmt.Fprintf(w, "  REGRESSION %s (tolerance %.0f%%)\n", r, opts.Tolerance*100)
	}

	if opts.Out != "" {
		out := &benchkit.File{Runs: []benchkit.Run{cur}}
		if err := out.Write(opts.Out); err != nil {
			return nil, err
		}
	}
	if opts.Append {
		hist.Runs = append(hist.Runs, cur)
		if err := hist.Write(opts.File); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "  recorded run %q in %s (%d runs)\n", cur.Label, opts.File, len(hist.Runs))
	}
	if opts.Compare && len(regressions) > 0 {
		return &cur, fmt.Errorf("fit throughput regressed on %d workload(s) vs run %q", len(regressions), prev.Label)
	}
	return &cur, nil
}

type servingOptions struct {
	Clients   int
	Batch     int
	Requests  int
	CacheSize int
	Seed      int64
}

// servingResult is the structured output of the serving experiment.
type servingResult struct {
	Clients     int     `json:"clients"`
	Batch       int     `json:"batch"`
	Requests    uint64  `json:"requests"`
	Rows        uint64  `json:"rows"`
	Failed      uint64  `json:"failed"`
	Seconds     float64 `json:"seconds"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	NumFeatures int     `json:"num_features"`
}

// runServing stands up the serving layer in-process and drives concurrent
// batched /predict load against it, reporting sustained throughput. The
// pipeline trains through the public composable Fit API.
func runServing(opts servingOptions, w io.Writer) (*servingResult, error) {
	ds, err := datagen.Generate(datagen.Spec{
		Name: "serving-bench", Train: 4000, Test: 1000, Dim: 12,
		Interactions: 4, SignalScale: 2.5, Seed: 31 + opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	fitRes, err := safe.Fit(context.Background(), safe.FromFrame(ds.Train), safe.WithSeed(opts.Seed))
	if err != nil {
		return nil, err
	}
	pipeline := fitRes.Pipeline
	tr, err := pipeline.Transform(ds.Train)
	if err != nil {
		return nil, err
	}
	cols := make([][]float64, tr.NumCols())
	for j := range cols {
		cols[j] = tr.Columns[j].Values
	}
	mcfg := gbdt.DefaultConfig()
	mcfg.NumTrees = 30
	model, err := gbdt.Train(cols, tr.Label, tr.Names(), mcfg)
	if err != nil {
		return nil, err
	}

	reg := serve.NewRegistry()
	if err := reg.Register("bench", "v1", pipeline, model); err != nil {
		return nil, err
	}
	srv := httptest.NewServer(serve.NewServer(reg, serve.Options{CacheSize: opts.CacheSize}))
	defer srv.Close()

	rows := make([][]float64, opts.Batch)
	for i := range rows {
		rows[i] = ds.Test.Row(i%ds.Test.NumRows(), nil)
	}
	body, err := json.Marshal(serve.BatchRequest{Rows: rows})
	if err != nil {
		return nil, err
	}

	var wg sync.WaitGroup
	var failed atomic.Uint64
	start := time.Now()
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opts.Requests; i++ {
				resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil || resp.StatusCode != http.StatusOK {
					failed.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Pull the server's own latency view.
	statsResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		return nil, err
	}
	defer statsResp.Body.Close()
	var stats serve.StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		return nil, err
	}

	res := &servingResult{
		Clients:     opts.Clients,
		Batch:       opts.Batch,
		Requests:    stats.Requests,
		Rows:        stats.Rows,
		Failed:      failed.Load(),
		Seconds:     elapsed.Seconds(),
		RowsPerSec:  float64(stats.Rows) / elapsed.Seconds(),
		P50us:       stats.Latency.P50us,
		P99us:       stats.Latency.P99us,
		NumFeatures: pipeline.NumFeatures(),
	}
	fmt.Fprintf(w, "\nServing throughput (batched /predict, %d features)\n", res.NumFeatures)
	fmt.Fprintf(w, "  clients=%d batch=%d requests=%d rows=%d failed=%d\n",
		res.Clients, res.Batch, res.Requests, res.Rows, res.Failed)
	fmt.Fprintf(w, "  %.0f rows/sec over %.2fs, latency p50=%.0fus p99=%.0fus\n",
		res.RowsPerSec, res.Seconds, res.P50us, res.P99us)
	return res, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "safe-bench:", err)
		os.Exit(1)
	}
}
