// Command safe-datagen emits the synthetic benchmark datasets (Table IV
// shapes) and business datasets (Table VII shapes) as CSV files, so the
// other tools and external baselines can consume identical data.
//
// Usage:
//
//	safe-datagen -out data/ [-scale 0.1] [-business-scale 0.005] [-which benchmarks|business|fraud|all]
//	             [-task binary|multiclass:K|regression] [-format csv|colstore]
//
// -task switches the generated label type: every emitted dataset keeps its
// planted feature interactions but draws K-class or continuous targets from
// the same signal, so the other tools can exercise the multiclass and
// regression fit paths on identical shapes.
//
// -format colstore emits .col binary columnar files (internal/colstore)
// instead of CSV: smaller, checksummed, and served zero-copy by the
// sharded fit via mmap.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/colstore"
	"repro/internal/datagen"
)

func main() {
	var (
		outDir        = flag.String("out", "data", "output directory")
		scale         = flag.Float64("scale", 0.1, "benchmark row scale (1 = paper sizes)")
		businessScale = flag.Float64("business-scale", 0.005, "business row scale (1 = 2.5M-8M rows)")
		which         = flag.String("which", "all", "benchmarks | business | fraud | all")
		taskFlag      = flag.String("task", "binary", "label type: binary, multiclass:K, or regression")
		format        = flag.String("format", "csv", "output format: csv or colstore (.col binary columnar)")
		seed          = flag.Int64("seed", 0, "seed offset added to every dataset's own seed")
		version       = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}
	fmt.Printf("safe-datagen %s seed=%d\n", buildinfo.String(), *seed)

	task, err := safe.ParseTask(*taskFlag)
	if err != nil {
		fatal(err)
	}
	if *format != "csv" && *format != "colstore" {
		fatal(fmt.Errorf("unknown -format %q (want csv or colstore)", *format))
	}
	target, classes := safe.TargetForTask(task)

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	var specs []safe.DatasetSpec
	switch *which {
	case "benchmarks":
		specs = datagen.BenchmarkSpecs(*scale)
	case "business":
		specs = datagen.BusinessSpecs(*businessScale)
	case "fraud":
		specs = []safe.DatasetSpec{datagen.FraudSpec()}
	case "all":
		specs = append(specs, datagen.BenchmarkSpecs(*scale)...)
		specs = append(specs, datagen.BusinessSpecs(*businessScale)...)
		specs = append(specs, datagen.FraudSpec())
	default:
		fatal(fmt.Errorf("unknown -which %q", *which))
	}

	for _, spec := range specs {
		spec.Seed += *seed
		spec.Target = target
		spec.Classes = classes
		ds, err := datagen.Generate(spec)
		if err != nil {
			fatal(err)
		}
		parts := map[string]*safe.Frame{
			"train": ds.Train,
			"test":  ds.Test,
		}
		if ds.Valid != nil && ds.Valid.NumRows() > 0 {
			parts["valid"] = ds.Valid
		}
		for part, f := range parts {
			var path string
			if *format == "colstore" {
				path = filepath.Join(*outDir, fmt.Sprintf("%s_%s.col", spec.Name, part))
				err = colstore.WriteFrame(path, f, colstore.WriterOptions{})
			} else {
				path = filepath.Join(*outDir, fmt.Sprintf("%s_%s.csv", spec.Name, part))
				err = f.WriteCSVFile(path)
			}
			if err != nil {
				fatal(err)
			}
			if task.Kind == safe.TaskBinary {
				fmt.Printf("wrote %s (%d rows x %d features, %.1f%% positive)\n",
					path, f.NumRows(), f.NumCols(), 100*f.PositiveRate())
			} else {
				fmt.Printf("wrote %s (%d rows x %d features, task=%s)\n",
					path, f.NumRows(), f.NumCols(), task)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "safe-datagen:", err)
	os.Exit(1)
}
