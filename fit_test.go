package safe_test

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/colstore"
)

// workload generates the benchmark-shaped synthetic dataset the perf
// harness fits (Interactions = Dim/3, dataset seed 11), per task family, so
// the equivalence tests pin the benchmarked distribution.
func workload(t *testing.T, rows, dim int, task safe.Task) *safe.Frame {
	t.Helper()
	target, classes := safe.TargetForTask(task)
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "fit-test", Train: rows, Test: 64, Dim: dim,
		Interactions: dim / 3, SignalScale: 2.5, Seed: 11,
		Target: target, Classes: classes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Train
}

func sameSelection(t *testing.T, label string, want, got *safe.Pipeline) {
	t.Helper()
	if strings.Join(want.Output, "|") != strings.Join(got.Output, "|") {
		t.Fatalf("%s selection diverged:\nwant: %v\n got: %v", label, want.Output, got.Output)
	}
}

// TestFitEquivalenceAcrossEntryPoints is the API-redesign pin: the
// composable safe.Fit — in memory and sharded — selects identical features
// in identical order to the deprecated Engineer.Fit and FitSharded shims,
// for all three task families.
func TestFitEquivalenceAcrossEntryPoints(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		task      safe.Task
		rows, dim int
	}{
		{safe.BinaryTask(), 12000, 16},
		{safe.MulticlassTask(3), 6000, 10},
		{safe.RegressionTask(), 6000, 10},
	} {
		t.Run(tc.task.String(), func(t *testing.T) {
			train := workload(t, tc.rows, tc.dim, tc.task)

			// Reference: the deprecated Engineer path.
			cfg := safe.DefaultConfig()
			cfg.Task = tc.task
			cfg.Seed = 1
			eng, err := safe.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := eng.Fit(train)
			if err != nil {
				t.Fatal(err)
			}

			// New API, in-memory engine.
			res, err := safe.Fit(ctx, safe.FromFrame(train),
				safe.WithTask(tc.task), safe.WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			sameSelection(t, "Fit(FromFrame)", want, res.Pipeline)
			if res.Shard != nil {
				t.Error("in-memory fit reported shard stats")
			}

			// New API, sharded engine over 4 partitions.
			shRes, err := safe.Fit(ctx, safe.FromFrame(train),
				safe.WithTask(tc.task), safe.WithSeed(1),
				safe.WithSharding(tc.rows/4))
			if err != nil {
				t.Fatal(err)
			}
			sameSelection(t, "Fit(WithSharding)", want, shRes.Pipeline)
			if shRes.Shard == nil || shRes.Shard.Partitions != 4 {
				t.Fatalf("shard stats: %+v, want 4 partitions", shRes.Shard)
			}

			// Deprecated FitSharded shim.
			shardCfg := safe.DefaultShardConfig()
			shardCfg.Core = cfg
			shimP, _, _, err := safe.FitSharded(safe.NewFrameChunks(train, tc.rows/4), shardCfg)
			if err != nil {
				t.Fatal(err)
			}
			sameSelection(t, "FitSharded", want, shimP)
		})
	}
}

// TestFitEquivalence100k pins the acceptance workload: on the 100k×50
// benchmark distribution the composable path matches the deprecated one
// exactly for the binary task. Skipped under -short and -race like the
// sharded engine's own 100k pin (the smaller always-on variant above covers
// the same code).
func TestFitEquivalence100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k×50 equivalence runs only without -short (see the always-on variant)")
	}
	if raceEnabled {
		t.Skip("100k×50 equivalence is minutes-long under the race detector")
	}
	train := workload(t, 100000, 50, safe.BinaryTask())
	cfg := safe.DefaultConfig()
	cfg.Seed = 1
	eng, err := safe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := eng.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	res, err := safe.Fit(context.Background(), safe.FromFrame(train), safe.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	sameSelection(t, "Fit 100k", want, res.Pipeline)
	shRes, err := safe.Fit(context.Background(), safe.FromFrame(train),
		safe.WithSeed(1), safe.WithSharding(25000))
	if err != nil {
		t.Fatal(err)
	}
	sameSelection(t, "Fit sharded 100k", want, shRes.Pipeline)
}

// TestFitFromCSVFile: the CSV source fits through both engines and reaches
// the same selection as the frame it round-trips.
func TestFitFromCSVFile(t *testing.T) {
	train := workload(t, 4000, 8, safe.BinaryTask())
	path := filepath.Join(t.TempDir(), "train.csv")
	if err := train.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mem, err := safe.Fit(ctx, safe.FromCSVFile(path, "label"), safe.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := safe.Fit(ctx, safe.FromCSVFile(path, "label"),
		safe.WithSeed(2), safe.WithSharding(1000))
	if err != nil {
		t.Fatal(err)
	}
	sameSelection(t, "csv sharded vs in-memory", mem.Pipeline, sh.Pipeline)
	if sh.Shard == nil || sh.Shard.Rows != 4000 {
		t.Fatalf("shard stats: %+v", sh.Shard)
	}
}

// TestFitFromColumnFile: the colstore source — inherently sharded, served
// through the mmap or streaming reader — selects exactly what the in-memory
// engine selects on the same rows.
func TestFitFromColumnFile(t *testing.T) {
	train := workload(t, 4000, 8, safe.BinaryTask())
	path := filepath.Join(t.TempDir(), "train.col")
	if err := colstore.WriteFrame(path, train, colstore.WriterOptions{GroupRows: 1000}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mem, err := safe.Fit(ctx, safe.FromFrame(train), safe.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	col, err := safe.Fit(ctx, safe.FromColumnFile(path), safe.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	sameSelection(t, "colstore vs in-memory", mem.Pipeline, col.Pipeline)
	if col.Shard == nil || col.Shard.Rows != 4000 {
		t.Fatalf("shard stats: %+v, want sharded fit over 4000 rows", col.Shard)
	}
}

// TestPlanValidation pins the option/source conflict surface.
func TestPlanValidation(t *testing.T) {
	train := workload(t, 500, 4, safe.BinaryTask())
	cases := []struct {
		name string
		src  safe.Source
		opts []safe.Option
	}{
		{"nil source", nil, nil},
		{"sketch without sharding", safe.FromFrame(train), []safe.Option{safe.WithSketch(1024, false)}},
		{"validation with sharding", safe.FromFrame(train), []safe.Option{safe.WithValidation(train), safe.WithSharding(100)}},
		{"early stopping without validation", safe.FromFrame(train), []safe.Option{safe.WithEarlyStopping(2, 0.001)}},
		{"zero iterations", safe.FromFrame(train), []safe.Option{safe.WithIterations(0)}},
		{"empty operators", safe.FromFrame(train), []safe.Option{safe.WithOperators()}},
		{"bad selection threshold", safe.FromFrame(train), []safe.Option{safe.WithSelection(0.1, 1.5)}},
		{"nil frame", safe.FromFrame(nil), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := safe.Fit(context.Background(), tc.src, tc.opts...); err == nil {
				t.Error("invalid plan accepted")
			}
		})
	}

	plan, err := safe.NewPlan(safe.FromFrame(train), safe.WithSharding(100))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Sharded() || plan.Engine() != "sharded" {
		t.Errorf("plan engine = %q, want sharded", plan.Engine())
	}
	plan, err = safe.NewPlan(safe.FromFrame(train))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Sharded() || plan.Engine() != "in-memory" {
		t.Errorf("plan engine = %q, want in-memory", plan.Engine())
	}
	if plan.Config().Iterations != 1 {
		t.Errorf("normalised config iterations = %d", plan.Config().Iterations)
	}
}

// TestFitEvents pins the event-stream protocol: balanced spans in order,
// monotone rows, and report stage timings fed by the same instrumentation.
func TestFitEvents(t *testing.T) {
	for _, sharded := range []bool{false, true} {
		name := "in-memory"
		if sharded {
			name = "sharded"
		}
		t.Run(name, func(t *testing.T) {
			train := workload(t, 3000, 8, safe.BinaryTask())
			var events []safe.FitEvent
			opts := []safe.Option{
				safe.WithSeed(3),
				safe.WithIterations(2),
				safe.WithEvents(func(ev safe.FitEvent) { events = append(events, ev) }),
			}
			if sharded {
				opts = append(opts, safe.WithSharding(1000))
			}
			res, err := safe.Fit(context.Background(), safe.FromFrame(train), opts...)
			if err != nil {
				t.Fatal(err)
			}
			if len(events) == 0 {
				t.Fatal("no events emitted")
			}
			if events[0].Kind != safe.EventFitStart {
				t.Errorf("first event %v, want fit-start", events[0].Kind)
			}
			last := events[len(events)-1]
			if last.Kind != safe.EventFitEnd {
				t.Errorf("last event %v, want fit-end", last.Kind)
			}
			if last.Survivors != len(res.Pipeline.Output) {
				t.Errorf("fit-end survivors %d, want %d", last.Survivors, len(res.Pipeline.Output))
			}

			var openStages, iterations int
			var rows int64
			stageEnds := map[safe.FitStage]int{}
			for _, ev := range events {
				if ev.Rows < rows {
					t.Fatalf("rows went backwards: %d after %d (%+v)", ev.Rows, rows, ev)
				}
				rows = ev.Rows
				switch ev.Kind {
				case safe.EventStageStart:
					openStages++
				case safe.EventStageEnd:
					openStages--
					stageEnds[ev.Stage]++
				case safe.EventIterationEnd:
					iterations++
				}
				if openStages < 0 || openStages > 1 {
					t.Fatalf("unbalanced stage spans at %+v", ev)
				}
			}
			if iterations != 2 {
				t.Errorf("iteration-end count %d, want 2", iterations)
			}
			for _, st := range []safe.FitStage{safe.StageMine, safe.StageScore, safe.StageGenerate, safe.StageIVFilter, safe.StagePearson, safe.StageRank} {
				if stageEnds[st] != 2 {
					t.Errorf("stage %v ended %d times, want 2", st, stageEnds[st])
				}
			}
			if rows == 0 {
				t.Error("no rows-processed accounting in the event stream")
			}
			for _, ir := range res.Report.Iterations {
				total := ir.MineTime + ir.ScoreTime + ir.GenerateTime + ir.IVTime + ir.PearsonTime + ir.RankTime
				if total <= 0 {
					t.Errorf("round %d has no stage timings: %+v", ir.Round, ir)
				}
				if total > ir.Elapsed+time.Millisecond {
					t.Errorf("round %d stage timings %v exceed elapsed %v", ir.Round, total, ir.Elapsed)
				}
			}
		})
	}
}

// leakCheck snapshots the goroutine count and asserts the process returns
// to it (pool workers are persistent by design, so the baseline is taken
// after a warmup fit has populated the pools).
func leakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// warmup runs one small fit so the shared worker pools exist before a leak
// baseline is taken.
func warmup(t *testing.T, train *safe.Frame) {
	t.Helper()
	if _, err := safe.Fit(context.Background(), safe.FromFrame(train), safe.WithSeed(9)); err != nil {
		t.Fatal(err)
	}
}

// cancelAt runs a fit that cancels its own context the first time the
// event stream reaches the given stage's start, and asserts the fit
// returns context.Canceled promptly (the < 1s abort bound, with slack for
// loaded CI machines) without leaking goroutines.
func cancelAt(t *testing.T, train *safe.Frame, stage safe.FitStage, extra ...safe.Option) {
	t.Helper()
	warmup(t, train)
	check := leakCheck(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelled atomic.Int64 // unix-nano timestamp of the cancel
	opts := append([]safe.Option{
		safe.WithSeed(9),
		safe.WithEvents(func(ev safe.FitEvent) {
			if ev.Kind == safe.EventStageStart && ev.Stage == stage && cancelled.Load() == 0 {
				cancelled.Store(time.Now().UnixNano())
				cancel()
			}
		}),
	}, extra...)
	_, err := safe.Fit(ctx, safe.FromFrame(train), opts...)
	returned := time.Now()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fit returned %v, want context.Canceled", err)
	}
	at := cancelled.Load()
	if at == 0 {
		t.Fatalf("stage %v never started", stage)
	}
	if latency := returned.Sub(time.Unix(0, at)); latency > time.Second {
		t.Errorf("fit took %v to honour cancellation (want < 1s)", latency)
	}
	check()
}

func TestFitCancelMidGeneration(t *testing.T) {
	cancelAt(t, workload(t, 8000, 12, safe.BinaryTask()), safe.StageGenerate)
}

func TestFitCancelMidSelection(t *testing.T) {
	train := workload(t, 8000, 12, safe.BinaryTask())
	cancelAt(t, train, safe.StagePearson)
	cancelAt(t, train, safe.StageRank)
}

func TestFitCancelMidShardFit(t *testing.T) {
	cancelAt(t, workload(t, 8000, 12, safe.BinaryTask()), safe.StageGenerate, safe.WithSharding(2000))
}

// cancellingChunks cancels a context as soon as the fit's streaming pass
// reads its Nth chunk — cancellation strictly in the middle of a shard
// pass, not at a stage boundary.
type cancellingChunks struct {
	safe.ChunkSource
	cancel     context.CancelFunc
	after      int
	reads      atomic.Int64
	firstFired atomic.Int64
}

func (c *cancellingChunks) Next() (*safe.Chunk, error) {
	if c.reads.Add(1) == int64(c.after) {
		c.firstFired.Store(time.Now().UnixNano())
		c.cancel()
	}
	return c.ChunkSource.Next()
}

func TestFitCancelMidShardPass(t *testing.T) {
	train := workload(t, 10000, 10, safe.BinaryTask())
	warmup(t, train)
	check := leakCheck(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancellingChunks{
		ChunkSource: safe.NewFrameChunks(train, 500),
		cancel:      cancel,
		after:       25, // mid-pass: beyond the first pass's 20 chunks
	}
	_, err := safe.Fit(ctx, safe.FromChunks(src), safe.WithSeed(9))
	returned := time.Now()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sharded fit returned %v, want context.Canceled", err)
	}
	if at := src.firstFired.Load(); at != 0 {
		if latency := returned.Sub(time.Unix(0, at)); latency > time.Second {
			t.Errorf("sharded fit took %v to honour mid-pass cancellation (want < 1s)", latency)
		}
	}
	check()
}

// TestFitDeadline: an already-expired deadline aborts before any real work.
func TestFitDeadline(t *testing.T) {
	train := workload(t, 2000, 8, safe.BinaryTask())
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := safe.Fit(ctx, safe.FromFrame(train)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired fit returned %v, want context.DeadlineExceeded", err)
	}
}

// TestFitChunkSourceAlwaysSharded: FromChunks selects the sharded engine
// with no explicit option.
func TestFitChunkSourceAlwaysSharded(t *testing.T) {
	train := workload(t, 2000, 6, safe.BinaryTask())
	res, err := safe.Fit(context.Background(), safe.FromChunks(safe.NewFrameChunks(train, 500)), safe.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shard == nil || res.Shard.Partitions != 4 {
		t.Fatalf("chunk source did not fit sharded: %+v", res.Shard)
	}
}

// TestFitValidationEarlyStopping: the options path drives the in-memory
// engine's validation tracking.
func TestFitValidationEarlyStopping(t *testing.T) {
	target, _ := safe.TargetForTask(safe.BinaryTask())
	ds, err := safe.GenerateDataset(safe.DatasetSpec{
		Name: "fit-valid", Train: 3000, Test: 1000, Dim: 8,
		Interactions: 2, SignalScale: 2.5, Seed: 17, Target: target,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := safe.Fit(context.Background(), safe.FromFrame(ds.Train),
		safe.WithSeed(5),
		safe.WithIterations(4),
		safe.WithValidation(ds.Test),
		safe.WithEarlyStopping(1, 0.0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Iterations) == 0 {
		t.Fatal("no iterations reported")
	}
	for _, ir := range res.Report.Iterations {
		if ir.ValidAUC == 0 {
			t.Errorf("round %d has no validation score", ir.Round)
		}
	}
}
